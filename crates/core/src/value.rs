//! The dynamic value system used across the object boundary.
//!
//! ALPS is a statically typed Pascal-like language; its compiler would
//! marshal entry-call parameters and results into typed slots. The
//! embedded Rust API plays the role of that compiled code, so values that
//! cross an object boundary (invocation parameters, results, channel
//! messages) are represented dynamically as [`Value`] with runtime type
//! checks against [`Ty`] signatures. The `alps-lang` interpreter performs
//! static checking before execution, so well-typed ALPS programs never
//! trip these checks.

use std::fmt;
use std::sync::Arc;

use alps_runtime::{Chan, Runtime};

use crate::error::{AlpsError, Result};

/// Runtime type tags for [`Value`]s.
///
/// `chan(T1,…,Tn)` mirrors the paper's channel declarations (§2.1.2);
/// channels are first-class and may appear inside messages and parameter
/// lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// No value.
    Unit,
    /// Boolean.
    Bool,
    /// 64-bit signed integer (ALPS `int`).
    Int,
    /// 64-bit float (ALPS `float`).
    Float,
    /// Immutable string (ALPS `string`).
    Str,
    /// Channel carrying tuples with the given element types.
    Chan(Vec<Ty>),
    /// Homogeneous list.
    List(Box<Ty>),
    /// Matches any value (used for generic plumbing, not exposed by the
    /// ALPS surface language).
    Any,
}

impl Ty {
    /// Whether `v` is acceptable where this type is declared.
    pub fn accepts(&self, v: &Value) -> bool {
        match (self, v) {
            (Ty::Any, _) => true,
            (Ty::Unit, Value::Unit) => true,
            (Ty::Bool, Value::Bool(_)) => true,
            (Ty::Int, Value::Int(_)) => true,
            (Ty::Float, Value::Float(_)) => true,
            (Ty::Str, Value::Str(_)) => true,
            (Ty::Chan(sig), Value::Chan(c)) => c.sig() == sig.as_slice(),
            (Ty::List(elem), Value::List(xs)) => xs.iter().all(|x| elem.accepts(x)),
            _ => false,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Bool => write!(f, "bool"),
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
            Ty::Str => write!(f, "string"),
            Ty::Chan(sig) => {
                write!(f, "chan(")?;
                for (i, t) in sig.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::List(t) => write!(f, "list({t})"),
            Ty::Any => write!(f, "any"),
        }
    }
}

/// A dynamically typed ALPS value.
///
/// # Examples
///
/// ```
/// use alps_core::{Ty, Value};
///
/// let v = Value::from(42i64);
/// assert_eq!(v.ty(), Ty::Int);
/// assert_eq!(v.as_int().unwrap(), 42);
/// assert_eq!(v.to_string(), "42");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No value.
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable shared string.
    Str(Arc<str>),
    /// First-class channel handle.
    Chan(ChanValue),
    /// Homogeneous list.
    List(Vec<Value>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value. Lists report the type of their
    /// first element (`list(any)` when empty).
    pub fn ty(&self) -> Ty {
        match self {
            Value::Unit => Ty::Unit,
            Value::Bool(_) => Ty::Bool,
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
            Value::Str(_) => Ty::Str,
            Value::Chan(c) => Ty::Chan(c.sig().to_vec()),
            Value::List(xs) => Ty::List(Box::new(xs.first().map(Value::ty).unwrap_or(Ty::Any))),
        }
    }

    /// Extract an `i64`.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not an `Int`.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(type_err("value", Ty::Int, other)),
        }
    }

    /// Extract a `bool`.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not a `Bool`.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("value", Ty::Bool, other)),
        }
    }

    /// Extract an `f64`.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not a `Float`.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            other => Err(type_err("value", Ty::Float, other)),
        }
    }

    /// Extract a string slice.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not a `Str`.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("value", Ty::Str, other)),
        }
    }

    /// Extract a channel handle.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not a `Chan`.
    pub fn as_chan(&self) -> Result<&ChanValue> {
        match self {
            Value::Chan(c) => Ok(c),
            other => Err(type_err("value", Ty::Chan(vec![]), other)),
        }
    }

    /// Extract a list slice.
    ///
    /// # Errors
    ///
    /// [`AlpsError::TypeMismatch`] when the value is not a `List`.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(xs) => Ok(xs),
            other => Err(type_err("value", Ty::List(Box::new(Ty::Any)), other)),
        }
    }
}

fn type_err(what: &str, expected: Ty, got: &Value) -> AlpsError {
    AlpsError::TypeMismatch {
        what: what.to_string(),
        index: 0,
        expected,
        got: got.ty(),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Chan(c) => write!(f, "<chan {}>", c.name()),
            Value::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<ChanValue> for Value {
    fn from(v: ChanValue) -> Self {
        Value::Chan(v)
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

/// Build a `Vec<Value>` argument list from heterogeneous Rust values.
///
/// ```
/// use alps_core::{vals, Value};
/// let args = vals![1i64, "hello", true];
/// assert_eq!(args.len(), 3);
/// assert_eq!(args[0], Value::Int(1));
/// ```
#[macro_export]
macro_rules! vals {
    () => { Vec::<$crate::Value>::new() };
    ($($v:expr),+ $(,)?) => {
        vec![$($crate::Value::from($v)),+]
    };
}

/// Check an argument vector against a type signature.
///
/// # Errors
///
/// [`AlpsError::ArityMismatch`] or [`AlpsError::TypeMismatch`] naming
/// `what` and the offending position.
pub fn check_types(what: &str, sig: &[Ty], vals: &[Value]) -> Result<()> {
    check_types_lazy(sig, vals, || what.to_string())
}

/// Like [`check_types`] but the description string is only built on
/// failure, keeping the success path allocation-free. Hot-path callers
/// (every entry invocation type-checks its arguments) use this form.
///
/// # Errors
///
/// Same as [`check_types`].
pub fn check_types_lazy(sig: &[Ty], vals: &[Value], what: impl FnOnce() -> String) -> Result<()> {
    if sig.len() != vals.len() {
        return Err(AlpsError::ArityMismatch {
            what: what(),
            expected: sig.len(),
            got: vals.len(),
        });
    }
    for (i, (t, v)) in sig.iter().zip(vals).enumerate() {
        if !t.accepts(v) {
            return Err(AlpsError::TypeMismatch {
                what: what(),
                index: i,
                expected: t.clone(),
                got: v.ty(),
            });
        }
    }
    Ok(())
}

/// Inline capacity of [`ValVec`]: argument/result tuples of this arity or
/// less live entirely on the stack.
pub const INLINE_VALS: usize = 4;

/// A small-vector of [`Value`]s used for entry-call arguments and results.
///
/// The common entry arity in ALPS programs is ≤ 4, so the fast call path
/// keeps tuples inline and performs no heap allocation. Longer tuples
/// spill to an ordinary `Vec`. Dereferences to `[Value]`, so indexing and
/// iteration work exactly like a `Vec<Value>`.
///
/// ```
/// use alps_core::{argv, ValVec, Value};
/// let a = argv![1i64, "x"];
/// assert_eq!(a.len(), 2);
/// assert_eq!(a[0], Value::Int(1));
/// let v: Vec<Value> = a.into();
/// assert_eq!(v.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub enum ValVec {
    /// Up to [`INLINE_VALS`] values on the stack; unused slots hold
    /// `Value::Unit`.
    Inline {
        /// Inline storage; slots at `len..` are `Value::Unit`.
        buf: [Value; INLINE_VALS],
        /// Number of live values in `buf`.
        len: u8,
    },
    /// Spilled storage for longer tuples.
    Heap(Vec<Value>),
}

const UNIT: Value = Value::Unit;

impl ValVec {
    /// An empty, inline tuple.
    pub const fn new() -> ValVec {
        ValVec::Inline {
            buf: [UNIT; INLINE_VALS],
            len: 0,
        }
    }

    /// Append a value, spilling to the heap past [`INLINE_VALS`].
    pub fn push(&mut self, v: Value) {
        match self {
            ValVec::Inline { buf, len } => {
                let n = *len as usize;
                if n < INLINE_VALS {
                    buf[n] = v;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(INLINE_VALS * 2);
                    for slot in buf.iter_mut() {
                        heap.push(std::mem::replace(slot, UNIT));
                    }
                    heap.push(v);
                    *self = ValVec::Heap(heap);
                }
            }
            ValVec::Heap(h) => h.push(v),
        }
    }

    /// Clone a slice into a `ValVec`, staying inline when it fits. This is
    /// what intercept-prefix extraction uses so that taking the first *k*
    /// arguments of a call costs no allocation for k ≤ 4.
    pub fn from_slice(s: &[Value]) -> ValVec {
        if s.len() <= INLINE_VALS {
            let mut buf = [UNIT; INLINE_VALS];
            for (slot, v) in buf.iter_mut().zip(s) {
                *slot = v.clone();
            }
            ValVec::Inline {
                buf,
                len: s.len() as u8,
            }
        } else {
            ValVec::Heap(s.to_vec())
        }
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        match self {
            ValVec::Inline { buf, len } => &buf[..*len as usize],
            ValVec::Heap(h) => h,
        }
    }

    /// The values as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [Value] {
        match self {
            ValVec::Inline { buf, len } => &mut buf[..*len as usize],
            ValVec::Heap(h) => h,
        }
    }

    /// Whether this tuple lives entirely on the stack.
    pub fn is_inline(&self) -> bool {
        matches!(self, ValVec::Inline { .. })
    }

    /// Split the tuple at `at`: `self` keeps `[..at]`, the returned tuple
    /// takes `[at..]` — both by move, the zero-copy analogue of a pair of
    /// [`from_slice`](Self::from_slice) calls. Inline tuples split
    /// without allocating; heap tuples defer to [`Vec::split_off`], whose
    /// allocation only exists for arities past [`INLINE_VALS`], outside
    /// the warm-path zero-allocation contract.
    ///
    /// # Panics
    ///
    /// If `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> ValVec {
        match self {
            ValVec::Inline { buf, len } => {
                let n = *len as usize;
                assert!(at <= n, "split_off at {at} out of bounds of len {n}");
                let mut tail = [UNIT; INLINE_VALS];
                for (slot, v) in tail.iter_mut().zip(buf[at..n].iter_mut()) {
                    *slot = std::mem::replace(v, UNIT);
                }
                *len = at as u8;
                ValVec::Inline {
                    buf: tail,
                    len: (n - at) as u8,
                }
            }
            ValVec::Heap(h) => ValVec::Heap(h.split_off(at)),
        }
    }
}

impl Default for ValVec {
    fn default() -> Self {
        ValVec::new()
    }
}

impl std::ops::Deref for ValVec {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for ValVec {
    fn deref_mut(&mut self) -> &mut [Value] {
        self.as_mut_slice()
    }
}

impl PartialEq for ValVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<Value>> for ValVec {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<Value>> for ValVec {
    fn from(v: Vec<Value>) -> Self {
        ValVec::Heap(v)
    }
}

impl From<ValVec> for Vec<Value> {
    fn from(v: ValVec) -> Self {
        match v {
            ValVec::Heap(h) => h,
            inline => inline.into_iter().collect(),
        }
    }
}

impl FromIterator<Value> for ValVec {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut out = ValVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl Extend<Value> for ValVec {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl IntoIterator for ValVec {
    type Item = Value;
    type IntoIter = ValVecIntoIter;
    fn into_iter(self) -> ValVecIntoIter {
        match self {
            ValVec::Inline { buf, len } => ValVecIntoIter::Inline { buf, pos: 0, len },
            ValVec::Heap(h) => ValVecIntoIter::Heap(h.into_iter()),
        }
    }
}

impl<'a> IntoIterator for &'a ValVec {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owning iterator over a [`ValVec`].
#[derive(Debug)]
pub enum ValVecIntoIter {
    /// Draining the inline buffer.
    Inline {
        /// Remaining values (consumed slots are reset to `Unit`).
        buf: [Value; INLINE_VALS],
        /// Next slot to yield.
        pos: u8,
        /// Total filled slots.
        len: u8,
    },
    /// Draining spilled storage.
    Heap(std::vec::IntoIter<Value>),
}

impl Iterator for ValVecIntoIter {
    type Item = Value;
    fn next(&mut self) -> Option<Value> {
        match self {
            ValVecIntoIter::Inline { buf, pos, len } => {
                if pos < len {
                    let v = std::mem::replace(&mut buf[*pos as usize], UNIT);
                    *pos += 1;
                    Some(v)
                } else {
                    None
                }
            }
            ValVecIntoIter::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            ValVecIntoIter::Inline { pos, len, .. } => (*len - *pos) as usize,
            ValVecIntoIter::Heap(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for ValVecIntoIter {}

/// Build a [`ValVec`] argument tuple from heterogeneous Rust values —
/// the allocation-free counterpart of [`vals!`] for the `call_id` fast
/// path (no heap allocation up to arity 4).
///
/// ```
/// use alps_core::{argv, Value};
/// let args = argv![1i64, "hello", true];
/// assert_eq!(args.len(), 3);
/// assert!(args.is_inline());
/// ```
#[macro_export]
macro_rules! argv {
    () => { $crate::ValVec::new() };
    ($($v:expr),+ $(,)?) => {{
        let mut out = $crate::ValVec::new();
        $( out.push($crate::Value::from($v)); )+
        out
    }};
}

/// A first-class, dynamically typed channel: the representation of ALPS
/// `chan(T1,…,Tn)` values. Messages are tuples checked against the
/// signature on send.
///
/// # Examples
///
/// ```
/// use alps_core::{ChanValue, Ty, vals};
/// use alps_runtime::Runtime;
///
/// let rt = Runtime::threaded();
/// let c = ChanValue::new("status", vec![Ty::Int, Ty::Str]);
/// c.send(&rt, vals![1i64, "ok"]).unwrap();
/// let msg = c.recv(&rt).unwrap();
/// assert_eq!(msg[1].as_str().unwrap(), "ok");
/// rt.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct ChanValue {
    chan: Chan<Vec<Value>>,
    sig: Arc<Vec<Ty>>,
}

impl ChanValue {
    /// Create an unbounded dynamic channel with the given tuple signature.
    pub fn new(name: impl Into<String>, sig: Vec<Ty>) -> ChanValue {
        ChanValue {
            chan: Chan::unbounded(name),
            sig: Arc::new(sig),
        }
    }

    /// Create a bounded dynamic channel.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn bounded(name: impl Into<String>, sig: Vec<Ty>, cap: usize) -> ChanValue {
        ChanValue {
            chan: Chan::bounded(name, cap),
            sig: Arc::new(sig),
        }
    }

    /// The tuple signature.
    pub fn sig(&self) -> &[Ty] {
        &self.sig
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        self.chan.name()
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.chan.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.chan.is_empty()
    }

    /// Send a tuple, type-checking it against the signature.
    ///
    /// # Errors
    ///
    /// Arity/type mismatches, or [`AlpsError::Runtime`] if closed.
    pub fn send(&self, rt: &Runtime, msg: Vec<Value>) -> Result<()> {
        check_types(&format!("send {}", self.name()), &self.sig, &msg)?;
        self.chan.send(rt, msg)?;
        Ok(())
    }

    /// Receive the oldest tuple, blocking.
    ///
    /// # Errors
    ///
    /// [`AlpsError::Runtime`] once the channel is closed and drained.
    pub fn recv(&self, rt: &Runtime) -> Result<Vec<Value>> {
        Ok(self.chan.recv(rt)?)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, rt: &Runtime) -> Option<Vec<Value>> {
        self.chan.try_recv(rt)
    }

    /// Close the channel.
    pub fn close(&self, rt: &Runtime) {
        self.chan.close(rt)
    }

    /// Whether the channel is closed.
    pub fn is_closed(&self) -> bool {
        self.chan.is_closed()
    }

    /// Access to the raw channel (select guards use this).
    pub(crate) fn raw(&self) -> &Chan<Vec<Value>> {
        &self.chan
    }
}

impl PartialEq for ChanValue {
    fn eq(&self, other: &Self) -> bool {
        self.chan.same(&other.chan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_accepts_matching_values() {
        assert!(Ty::Int.accepts(&Value::Int(1)));
        assert!(Ty::Bool.accepts(&Value::Bool(true)));
        assert!(Ty::Str.accepts(&Value::str("x")));
        assert!(Ty::Any.accepts(&Value::Float(1.0)));
        assert!(!Ty::Int.accepts(&Value::Bool(true)));
        assert!(Ty::List(Box::new(Ty::Int)).accepts(&Value::List(vec![Value::Int(1)])));
        assert!(!Ty::List(Box::new(Ty::Int)).accepts(&Value::List(vec![Value::str("x")])));
        // Empty list matches any list type.
        assert!(Ty::List(Box::new(Ty::Int)).accepts(&Value::List(vec![])));
    }

    #[test]
    fn chan_type_matches_on_signature() {
        let c = ChanValue::new("c", vec![Ty::Int]);
        let v = Value::Chan(c);
        assert!(Ty::Chan(vec![Ty::Int]).accepts(&v));
        assert!(!Ty::Chan(vec![Ty::Str]).accepts(&v));
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::from(5i64).as_int().unwrap(), 5);
        assert!(Value::from(true).as_bool().unwrap());
        assert_eq!(Value::from(2.5).as_float().unwrap(), 2.5);
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
        assert_eq!(Value::List(vec![Value::Int(1)]).as_list().unwrap().len(), 1);
        assert!(Value::from(5i64).as_bool().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            Ty::Chan(vec![Ty::Int, Ty::Str]).to_string(),
            "chan(int, string)"
        );
        assert_eq!(Ty::List(Box::new(Ty::Bool)).to_string(), "list(bool)");
    }

    #[test]
    fn check_types_reports_position() {
        let sig = vec![Ty::Int, Ty::Str];
        let err =
            check_types("entry P", &sig, &[Value::from(1i64), Value::from(2i64)]).unwrap_err();
        match err {
            AlpsError::TypeMismatch { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected {other}"),
        }
        let err = check_types("entry P", &sig, &[Value::from(1i64)]).unwrap_err();
        assert!(matches!(
            err,
            AlpsError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        check_types("entry P", &sig, &[Value::from(1i64), Value::from("x")]).unwrap();
    }

    #[test]
    fn chan_value_send_checks_types() {
        let rt = Runtime::threaded();
        let c = ChanValue::new("c", vec![Ty::Int]);
        assert!(c.send(&rt, vals!["nope"]).is_err());
        c.send(&rt, vals![1i64]).unwrap();
        assert_eq!(c.recv(&rt).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn chan_value_identity_equality() {
        let a = ChanValue::new("a", vec![]);
        let b = a.clone();
        let c = ChanValue::new("a", vec![]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vals_macro_builds_lists() {
        let v = vals![1i64, true, "s", 2.0];
        assert_eq!(v.len(), 4);
        let empty = vals![];
        assert!(empty.is_empty());
    }

    #[test]
    fn valvec_split_off_moves_the_tail() {
        // Inline stays inline on both sides.
        let mut v: ValVec = vals![1i64, 2i64, 3i64, 4i64].into_iter().collect();
        let tail = v.split_off(1);
        assert!(v.is_inline() && tail.is_inline());
        assert_eq!(v.as_slice(), &[Value::Int(1)]);
        assert_eq!(
            tail.as_slice(),
            &[Value::Int(2), Value::Int(3), Value::Int(4)]
        );

        // Boundary splits.
        let mut v: ValVec = vals![1i64, 2i64].into_iter().collect();
        assert!(v.split_off(2).is_empty());
        assert_eq!(v.len(), 2);
        let tail = v.split_off(0);
        assert!(v.is_empty());
        assert_eq!(tail.len(), 2);

        // Heap tuples split via Vec::split_off; an Arc-backed string
        // moves rather than clones.
        let s = Value::str("shared");
        let arc = match &s {
            Value::Str(a) => std::sync::Arc::clone(a),
            _ => unreachable!(),
        };
        let mut v: ValVec = (0..5).map(Value::from).chain([s]).collect();
        assert!(!v.is_inline());
        let tail = v.split_off(5);
        assert_eq!(v.len(), 5);
        assert_eq!(tail.len(), 1);
        drop(v);
        drop(tail);
        assert_eq!(std::sync::Arc::strong_count(&arc), 1, "moved, not cloned");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn valvec_split_off_past_len_panics() {
        let mut v: ValVec = vals![1i64].into_iter().collect();
        let _ = v.split_off(2);
    }
}
