//! Supervision, admission, and retry policy types.
//!
//! The paper makes the manager the single interception point for "all
//! synchronization and scheduling" in an object; this module extends that
//! seat to *recovery and admission* policy:
//!
//! * [`RestartPolicy`] — what happens when an entry body panics in a
//!   supervised object ([`ObjectBuilder::supervise`](crate::ObjectBuilder::supervise)):
//!   stay poisoned forever, restart within a budget, or always restart.
//! * [`OnRestart`] — what happens to in-flight calls caught by a restart:
//!   fail them with [`AlpsError::ObjectRestarting`](crate::AlpsError::ObjectRestarting)
//!   or re-queue the ones that have not been handed to the (now dead)
//!   manager generation.
//! * [`AdmissionPolicy`] — what happens when the bounded intake ring is
//!   full: block with backpressure, shed the newest or oldest call with
//!   [`AlpsError::Overloaded`](crate::AlpsError::Overloaded), or keep
//!   blocking while flagging overload to the manager (watermarks).
//! * [`RetryPolicy`] / [`Backoff`] — caller-side retry of the transient
//!   errors the two mechanisms above produce
//!   ([`ObjectHandle::call_retry`](crate::ObjectHandle::call_retry)).

/// What a supervised object does when an entry body panics.
///
/// Supervision implies poisoning semantics during the failure window: the
/// panic marks the object poisoned, the restart (if policy permits)
/// sweeps in-flight calls, re-runs the
/// [`state_init`](crate::ObjectBuilder::state_init) closure, bumps the
/// object generation, and un-poisons. If the policy refuses (budget
/// exhausted, or [`Never`](RestartPolicy::Never)), the object stays
/// poisoned — exactly
/// [`poison_on_panic`](crate::ObjectBuilder::poison_on_panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Today's poison behaviour: the first body panic poisons the object
    /// permanently.
    Never,
    /// Restart after a panic, but give up (permanent poison) once more
    /// than `max_restarts` restarts have happened within the trailing
    /// `window_ticks` virtual microseconds. A crash-looping constructor
    /// or state-dependent panic thus converges to `Never` instead of
    /// burning the object's callers forever.
    RestartTransient {
        /// Restarts allowed inside the window before giving up.
        max_restarts: u32,
        /// Width of the trailing budget window in ticks.
        window_ticks: u64,
    },
    /// Restart unconditionally on every body panic.
    AlwaysFresh,
}

/// What a restart does with the calls it catches in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnRestart {
    /// Answer every in-flight call — queued, attached, accepted, started,
    /// ready, awaited, or still in the intake ring — with
    /// [`AlpsError::ObjectRestarting`](crate::AlpsError::ObjectRestarting).
    /// The conservative default: no call spans a state reset.
    #[default]
    FailInFlight,
    /// Keep the calls the dead manager generation never saw: ring
    /// residents, queued, and attached-but-unaccepted calls survive into
    /// the new generation (per-entry FIFO preserved) and are served as if
    /// they had arrived after the restart. Calls the old generation
    /// already held — accepted, started, ready, awaited — are failed with
    /// `ObjectRestarting`: the manager bookkeeping that owned them is
    /// gone, and a started body's pre-restart result must never be
    /// delivered (its slot is tombstoned).
    Requeue,
}

/// What the call protocol does when the bounded intake ring is full.
///
/// Every policy preserves the intake's empty→non-empty notify contract
/// (only a push observing the empty→non-empty transition wakes the
/// manager) and per-entry FIFO (shedding removes an end of the queue,
/// never the middle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Backpressure: the caller yields, then parks until the manager
    /// drains room. Today's behaviour, made park-based instead of a pure
    /// yield spin.
    #[default]
    Block,
    /// Refuse the incoming call with
    /// [`AlpsError::Overloaded`](crate::AlpsError::Overloaded). Bounded
    /// latency for admitted calls; newest work is the casualty.
    ShedNewest,
    /// Evict the *oldest* undrained ring resident (answering it
    /// `Overloaded`) and admit the incoming call. Freshest work wins —
    /// the right shape when stale requests have expired anyway.
    ShedOldest,
    /// [`Block`](AdmissionPolicy::Block), plus occupancy watermarks that
    /// flip a `mgr_overloaded` flag the manager can read
    /// ([`ManagerCtx::overloaded`](crate::ManagerCtx::overloaded)) to
    /// prioritize draining over admission, and that
    /// [`ObjectStats::overload_flips`](crate::ObjectStats::overload_flips)
    /// counts. The flag sets when occupancy reaches `high` and clears
    /// when a drain leaves it at or below `low`.
    Cooperative {
        /// Set `mgr_overloaded` at this ring occupancy.
        high: usize,
        /// Clear it once a drain leaves occupancy at or below this.
        low: usize,
    },
}

/// Delay schedule between [`call_retry`](crate::ObjectHandle::call_retry)
/// attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// Retry immediately, no delay.
    None,
    /// Sleep exactly this many ticks between attempts.
    Fixed(u64),
    /// Exponential backoff with decorrelating jitter: attempt *k* sleeps
    /// a uniformly random duration in `[d/2, d]` where
    /// `d = min(cap, base << k)`. The jitter is drawn from
    /// [`Runtime::rand_u64`](alps_runtime::Runtime::rand_u64), so on a
    /// seeded simulation the "random" delays replay deterministically.
    ExpJitter {
        /// First-attempt delay in ticks (doubles every retry).
        base: u64,
        /// Upper bound on the un-jittered delay.
        cap: u64,
    },
}

/// Caller-side retry of transient failures, layered on
/// [`call_deadline`](crate::ObjectHandle::call_deadline).
///
/// Only [`Overloaded`](crate::AlpsError::Overloaded),
/// [`ObjectRestarting`](crate::AlpsError::ObjectRestarting), and
/// [`Timeout`](crate::AlpsError::Timeout) are retried — errors that mean
/// "the object could not take the call right now". A *delivered*
/// application error ([`BodyFailed`](crate::AlpsError::BodyFailed),
/// [`Cancelled`](crate::AlpsError::Cancelled), …) is never retried: the
/// body may have executed, and retrying would double-apply its effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` is treated as `1`).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Total budget in virtual microseconds across all attempts and
    /// backoff sleeps. Each attempt's deadline is the remaining budget
    /// split evenly over the remaining attempts, so one slow attempt
    /// cannot starve the rest.
    pub budget_ticks: u64,
}

impl RetryPolicy {
    /// `max_attempts` tries, no backoff, `budget_ticks` total budget.
    pub fn new(max_attempts: u32, budget_ticks: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff: Backoff::None,
            budget_ticks,
        }
    }

    /// Replace the backoff schedule.
    pub fn backoff(mut self, b: Backoff) -> RetryPolicy {
        self.backoff = b;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_builder_roundtrips() {
        let p = RetryPolicy::new(3, 900).backoff(Backoff::Fixed(10));
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.budget_ticks, 900);
        assert_eq!(p.backoff, Backoff::Fixed(10));
    }

    #[test]
    fn defaults_are_conservative() {
        assert_eq!(OnRestart::default(), OnRestart::FailInFlight);
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Block);
    }
}
