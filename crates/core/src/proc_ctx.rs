//! Execution context handed to entry-procedure bodies.

use std::fmt;
use std::sync::Arc;

use alps_runtime::Runtime;

use crate::error::Result;
use crate::object::ObjectInner;
use crate::value::{check_types_lazy, ValVec};

/// Context available inside an entry-procedure body: identity (which
/// array element the call is attached to, paper §2.5), the runtime (for
/// channels/sleep), and local-procedure calls (paper §2.3: local
/// procedures may be intercepted too, letting the manager control entry
/// procedures even after starting them).
pub struct ProcCtx {
    obj: Arc<ObjectInner>,
    entry: usize,
    slot: usize,
}

impl fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcCtx")
            .field("object", &self.obj.name)
            .field("entry", &self.entry_name())
            .field("slot", &self.slot)
            .finish()
    }
}

impl ProcCtx {
    pub(crate) fn new(obj: Arc<ObjectInner>, entry: usize, slot: usize) -> ProcCtx {
        ProcCtx { obj, entry, slot }
    }

    /// The runtime the object lives on (for channel operations, spawning
    /// helper processes, timing).
    pub fn rt(&self) -> &Runtime {
        &self.obj.rt
    }

    /// Which element of the hidden procedure array this execution is
    /// attached to (0-based; the paper writes `P[1..N]`).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Name of the executing entry.
    pub fn entry_name(&self) -> &str {
        &self.obj.entries[self.entry].name
    }

    /// Name of the enclosing object.
    pub fn object_name(&self) -> &str {
        &self.obj.name
    }

    /// Current time in ticks.
    pub fn now(&self) -> u64 {
        self.obj.rt.now()
    }

    /// Sleep for `ticks` — used to model service times in simulations.
    pub fn sleep(&self, ticks: u64) {
        self.obj.rt.sleep(ticks)
    }

    /// Call a procedure of the *same* object from inside a body.
    ///
    /// If the target is intercepted, the call goes through the full
    /// attach/accept/start/finish protocol, so the manager schedules it —
    /// this is how a manager stays "solely responsible for the
    /// scheduling" even for running entries (paper §2.3). Otherwise the
    /// body executes inline in the current process.
    ///
    /// # Errors
    ///
    /// [`crate::AlpsError::UnknownEntry`], argument type mismatches, or
    /// whatever the callee fails with.
    pub fn call_local(&mut self, name: &str, args: impl Into<ValVec>) -> Result<ValVec> {
        let args: ValVec = args.into();
        let idx = self.obj.entry_idx(name)?;
        let def = &self.obj.entries[idx];
        if def.intercept.is_some() {
            return self.obj.call_protocol(idx, args, false);
        }
        // Inline execution in the calling process.
        check_types_lazy(&def.params, &args, || {
            format!("call {}.{}", self.obj.name, def.name)
        })?;
        let body = def
            .body
            .clone()
            .expect("validated at build: every entry has a body");
        let mut inner_ctx = ProcCtx::new(Arc::clone(&self.obj), idx, 0);
        let results = body(&mut inner_ctx, args)?;
        check_types_lazy(&self.obj.full_results[idx], &results, || {
            format!("results of {}.{}", self.obj.name, def.name)
        })?;
        Ok(results)
    }

    /// `#P` for an entry of this object.
    ///
    /// # Errors
    ///
    /// [`crate::AlpsError::UnknownEntry`] for a bad name.
    pub fn pending(&self, entry: &str) -> Result<usize> {
        let idx = self.obj.entry_idx(entry)?;
        Ok(self.obj.pending(idx))
    }
}
