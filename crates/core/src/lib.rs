//! # alps-core — ALPS objects, managers, and hidden procedure arrays
//!
//! Reproduction of the language mechanisms of *"Synchronization and
//! Scheduling in ALPS Objects"* (ICDCS 1988) as an embedded Rust API:
//!
//! * **Objects** ([`ObjectBuilder`], [`ObjectHandle`]) — shared data plus
//!   entry procedures, called RPC-style with [`ObjectHandle::call`].
//! * **Managers** ([`ManagerCtx`]) — a high-priority process per object
//!   that intercepts entry calls and implements all synchronization and
//!   scheduling via `accept` / `start` / `await` / `finish` / `execute`,
//!   including request combining (`finish_accepted`).
//! * **Hidden procedure arrays** ([`EntryDef::array`]) — an entry exported
//!   as a single procedure but implemented as an array; each call attaches
//!   to a free element the manager can name individually.
//! * **Guarded selection** ([`Guard`], [`Selected`]) — CSP-style
//!   `select`/`loop` with acceptance conditions over received values and
//!   run-time `pri` priorities.
//! * **Hidden parameters/results** and **intercepted prefixes**
//!   ([`EntryDef::hidden_params`], [`EntryDef::intercept_params`], …).
//! * **Process pools** ([`PoolMode`]) — per-call, per-slot (1:1), or a
//!   shared pool of `M ≪ N` workers (paper §3).
//! * **Fast-path calls** ([`ObjectHandle::entry_id`],
//!   [`ObjectHandle::call_id`], [`ValVec`]/[`argv!`]) — interned entry
//!   ids plus inline argument tuples make a steady-state call of arity
//!   ≤ 4 to a non-intercepted entry allocation-free.
//!
//! ## Quickstart: the paper's bounded buffer (§2.4.1)
//!
//! ```
//! use alps_core::{vals, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
//! use alps_runtime::SimRuntime;
//! use std::collections::VecDeque;
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! let sim = SimRuntime::new();
//! let got = sim.run(|rt| {
//!     let buf: Arc<Mutex<VecDeque<Value>>> = Arc::new(Mutex::new(VecDeque::new()));
//!     let (b1, b2) = (Arc::clone(&buf), Arc::clone(&buf));
//!     const N: usize = 4;
//!     let buffer = ObjectBuilder::new("Buffer")
//!         .entry(
//!             EntryDef::new("Deposit").params([Ty::Int]).intercepted().body(
//!                 move |_ctx, args| {
//!                     b1.lock().push_back(args[0].clone());
//!                     Ok(vec![])
//!                 },
//!             ),
//!         )
//!         .entry(
//!             EntryDef::new("Remove").results([Ty::Int]).intercepted().body(
//!                 move |_ctx, _args| Ok(vec![b2.lock().pop_front().expect("non-empty")]),
//!             ),
//!         )
//!         .manager(move |mgr| {
//!             let mut count = 0usize;
//!             loop {
//!                 let sel = mgr.select(vec![
//!                     Guard::accept("Deposit").when(move |_| count < N),
//!                     Guard::accept("Remove").when(move |_| count > 0),
//!                 ])?;
//!                 match sel {
//!                     Selected::Accepted { guard, call } => {
//!                         let is_deposit = guard == 0;
//!                         mgr.execute(call)?;
//!                         if is_deposit { count += 1 } else { count -= 1 }
//!                     }
//!                     _ => unreachable!(),
//!                 }
//!             }
//!         })
//!         .spawn(rt)
//!         .unwrap();
//!     buffer.call("Deposit", vals![7i64]).unwrap();
//!     buffer.call("Remove", vals![]).unwrap()[0].as_int().unwrap()
//! })
//! .unwrap();
//! assert_eq!(got, 7);
//! ```

#![warn(missing_docs)]

mod entry;
mod error;
mod lane;
mod manager;
mod object;
mod pool;
mod proc_ctx;
mod select;
mod shard;
mod stats;
mod supervise;
mod value;

pub use entry::{EntryBody, EntryDef, Intercept};
pub use error::{AlpsError, Result};
pub use manager::{AcceptedCall, ManagerCtx, ReadyEntry};
pub use object::{EntryId, ManagerBody, ObjectBuilder, ObjectHandle};
pub use pool::PoolMode;
pub use proc_ctx::ProcCtx;
pub use select::{Guard, GuardView, Selected};
pub use shard::{hash_values, spread, ShardEntryId, ShardedBuilder, ShardedHandle, ShardedStats};
pub use stats::ObjectStats;
pub use supervise::{AdmissionPolicy, Backoff, OnRestart, RestartPolicy, RetryPolicy};
pub use value::{check_types, check_types_lazy, ChanValue, Ty, ValVec, Value, INLINE_VALS};
