//! ALPS objects: the call-protocol state machine, hidden procedure
//! arrays, implicit starts, and object lifecycle.
//!
//! Every hidden-procedure-array slot moves through the protocol of paper
//! §2.3/§2.5:
//!
//! ```text
//!            attach                accept            start
//! Free ───────────────▶ Attached ─────────▶ Accepted ──────▶ Started
//!   ▲                                          │                │ body runs
//!   │                 finish (combining, §2.7) │                ▼
//!   │◀─────────────────────────────────────────┘             Ready
//!   │                                  await                    │
//!   │◀───────────── Awaited ◀───────────────────────────────────┘
//!          finish
//! ```
//!
//! Calls that find no free slot wait in a FIFO queue and attach when a
//! slot frees (`#P` counts both attached-unaccepted and queued calls,
//! paper §2.5.1). Entries not listed in the manager's intercepts clause
//! are started implicitly at attach time (paper §2.3).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use alps_runtime::{Notifier, Priority, ProcId, Runtime, Spawn};
use parking_lot::Mutex;

use crate::entry::EntryDef;
use crate::error::{AlpsError, Result};
use crate::manager::ManagerCtx;
use crate::pool::{Pool, PoolMode};
use crate::proc_ctx::ProcCtx;
use crate::stats::ObjectStats;
use crate::value::{check_types, Value};

/// The manager process body. It runs once, typically an endless
/// `loop { mgr.select(...)? ... }`; returning `Ok` ends the manager (the
/// object then no longer accepts intercepted calls), and
/// [`AlpsError::ObjectClosed`] is the normal exit path at shutdown.
pub type ManagerBody = Box<dyn FnMut(&mut ManagerCtx) -> Result<()> + Send + 'static>;

pub(crate) struct CallCell {
    pub(crate) args: Vec<Value>,
    pub(crate) caller: ProcId,
    pub(crate) t_call: u64,
    pub(crate) times: Mutex<Times>,
    pub(crate) st: Mutex<CallSt>,
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Times {
    pub(crate) attach: u64,
    pub(crate) accept: u64,
    pub(crate) start: u64,
}

pub(crate) enum CallSt {
    Waiting,
    Done(Result<Vec<Value>>),
}

impl CallCell {
    fn new(args: Vec<Value>, caller: ProcId, t_call: u64) -> Arc<CallCell> {
        Arc::new(CallCell {
            args,
            caller,
            t_call,
            times: Mutex::new(Times::default()),
            st: Mutex::new(CallSt::Waiting),
        })
    }
}

/// Slot states of the hidden-procedure-array protocol.
pub(crate) enum Slot {
    Free,
    Attached {
        call: Arc<CallCell>,
    },
    Accepted {
        call: Arc<CallCell>,
    },
    Started {
        call: Arc<CallCell>,
    },
    /// Body finished; `outcome` is the full implementation-side result
    /// list (public ++ hidden) or a failure message.
    Ready {
        call: Arc<CallCell>,
        outcome: std::result::Result<Vec<Value>, String>,
    },
    /// Manager executed `await`; the non-intercepted public results wait
    /// here for `finish` to release them to the caller.
    Awaited {
        call: Arc<CallCell>,
        remainder: Vec<Value>,
    },
}

impl Slot {
    pub(crate) fn state_name(&self) -> &'static str {
        match self {
            Slot::Free => "free",
            Slot::Attached { .. } => "attached",
            Slot::Accepted { .. } => "accepted",
            Slot::Started { .. } => "started",
            Slot::Ready { .. } => "ready",
            Slot::Awaited { .. } => "awaited",
        }
    }
}

pub(crate) struct EntryState {
    pub(crate) slots: Vec<Slot>,
    pub(crate) waitq: VecDeque<Arc<CallCell>>,
}

pub(crate) struct ObjState {
    pub(crate) entries: Vec<EntryState>,
}

pub(crate) struct ObjectInner {
    pub(crate) name: String,
    pub(crate) rt: Runtime,
    pub(crate) entries: Vec<EntryDef>,
    pub(crate) by_name: HashMap<String, usize>,
    pub(crate) slot_base: Vec<usize>,
    pub(crate) state: Mutex<ObjState>,
    pub(crate) notifier: Notifier,
    pub(crate) stats: ObjectStats,
    pub(crate) closed: AtomicBool,
    pub(crate) pool: Pool,
    pub(crate) manager_error: Mutex<Option<AlpsError>>,
}

impl fmt::Debug for ObjectInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Object")
            .field("name", &self.name)
            .field("entries", &self.entries.len())
            .field("closed", &self.closed.load(Ordering::SeqCst))
            .finish()
    }
}

impl ObjectInner {
    pub(crate) fn entry_idx(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| AlpsError::UnknownEntry {
                object: self.name.clone(),
                entry: name.to_string(),
            })
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    pub(crate) fn closed_err(&self) -> AlpsError {
        AlpsError::ObjectClosed {
            object: self.name.clone(),
        }
    }

    /// Complete a call: deliver the result and unpark the caller.
    pub(crate) fn complete(&self, call: &Arc<CallCell>, result: Result<Vec<Value>>) {
        if result.is_ok() {
            let now = self.rt.now();
            self.stats.on_complete(now.saturating_sub(call.t_call));
        }
        *call.st.lock() = CallSt::Done(result);
        self.rt.unpark(call.caller);
    }

    /// Attach a call to a free slot of `entry`, or queue it. Returns an
    /// implicit-start dispatch if the entry is not intercepted.
    /// Caller must run the returned dispatch *after* releasing the state
    /// lock it passed in.
    pub(crate) fn attach_or_queue(
        self: &Arc<Self>,
        st: &mut ObjState,
        entry: usize,
        call: Arc<CallCell>,
    ) -> Option<(usize, Vec<Value>)> {
        let es = &mut st.entries[entry];
        let free = es.slots.iter().position(|s| matches!(s, Slot::Free));
        match free {
            Some(i) => self.attach_to_slot(st, entry, i, call),
            None => {
                es.waitq.push_back(call);
                // #P changed; manager `when` conditions may depend on it.
                self.notifier.notify(&self.rt);
                None
            }
        }
    }

    /// Attach `call` to the known-free slot `i`.
    pub(crate) fn attach_to_slot(
        self: &Arc<Self>,
        st: &mut ObjState,
        entry: usize,
        i: usize,
        call: Arc<CallCell>,
    ) -> Option<(usize, Vec<Value>)> {
        let now = self.rt.now();
        call.times.lock().attach = now;
        self.stats.on_attach(now.saturating_sub(call.t_call));
        let def = &self.entries[entry];
        if def.intercept.is_some() {
            st.entries[entry].slots[i] = Slot::Attached { call };
            self.notifier.notify(&self.rt);
            None
        } else {
            // Implicit start (paper §2.3: calls to procedures not listed
            // in the intercepts clause are started implicitly).
            call.times.lock().start = now;
            let params = call.args.clone();
            st.entries[entry].slots[i] = Slot::Started { call };
            self.stats.on_implicit_start();
            Some((i, params))
        }
    }

    /// Free slot `i` of `entry` and attach the next queued call, if any.
    /// Returns an implicit-start dispatch to run after unlocking.
    pub(crate) fn free_slot_and_pull(
        self: &Arc<Self>,
        st: &mut ObjState,
        entry: usize,
        i: usize,
    ) -> Option<(usize, Vec<Value>)> {
        st.entries[entry].slots[i] = Slot::Free;
        if let Some(next) = st.entries[entry].waitq.pop_front() {
            self.attach_to_slot(st, entry, i, next)
        } else {
            None
        }
    }

    /// Hand a started slot's execution to the pool.
    pub(crate) fn dispatch_body(self: &Arc<Self>, entry: usize, slot: usize, params: Vec<Value>) {
        let weak = Arc::downgrade(self);
        let key = self.slot_base[entry] + slot;
        self.pool.dispatch(
            key,
            Box::new(move || {
                let Some(obj) = weak.upgrade() else {
                    return;
                };
                obj.run_body(entry, slot, params);
            }),
        );
    }

    /// Execute the body of `entry` in the current process and report the
    /// outcome to the state machine.
    pub(crate) fn run_body(self: &Arc<Self>, entry: usize, slot: usize, params: Vec<Value>) {
        let def = &self.entries[entry];
        let body = def
            .body
            .clone()
            .expect("validated at build: every entry has a body");
        let mut ctx = ProcCtx::new(Arc::clone(self), entry, slot);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx, params)));
        let outcome = match outcome {
            Ok(Ok(results)) => {
                match check_types(
                    &format!("results of {}.{}", self.name, def.name),
                    &def.full_results(),
                    &results,
                ) {
                    Ok(()) => Ok(results),
                    Err(e) => Err(e.to_string()),
                }
            }
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(panic_message(payload.as_ref())),
        };
        self.body_done(entry, slot, outcome);
    }

    /// Record a body's completion: intercepted entries become `Ready` for
    /// the manager; implicit entries answer the caller directly.
    fn body_done(
        self: &Arc<Self>,
        entry: usize,
        slot: usize,
        outcome: std::result::Result<Vec<Value>, String>,
    ) {
        let mut dispatch = None;
        {
            let mut st = self.state.lock();
            let s = &mut st.entries[entry].slots[slot];
            let call = match std::mem::replace(s, Slot::Free) {
                Slot::Started { call } => call,
                other => {
                    // Object likely shut down underneath the body.
                    *s = other;
                    return;
                }
            };
            let now = self.rt.now();
            let started = call.times.lock().start;
            self.stats.on_service(now.saturating_sub(started));
            let def = &self.entries[entry];
            if def.intercept.is_some() {
                if outcome.is_err() {
                    self.stats.on_body_failure();
                }
                st.entries[entry].slots[slot] = Slot::Ready { call, outcome };
                self.notifier.notify(&self.rt);
            } else {
                match outcome {
                    Ok(results) => self.complete(&call, Ok(results)),
                    Err(msg) => {
                        self.stats.on_body_failure();
                        self.complete(
                            &call,
                            Err(AlpsError::BodyFailed {
                                entry: def.name.clone(),
                                message: msg,
                            }),
                        );
                    }
                }
                dispatch = self.free_slot_and_pull(&mut st, entry, slot);
            }
        }
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
    }

    /// The full blocking call protocol: validate, attach or queue, wait
    /// for the reply.
    pub(crate) fn call_protocol(
        self: &Arc<Self>,
        entry: usize,
        args: Vec<Value>,
        external: bool,
    ) -> Result<Vec<Value>> {
        let def = &self.entries[entry];
        if external && def.local {
            return Err(AlpsError::LocalEntryCalled {
                object: self.name.clone(),
                entry: def.name.clone(),
            });
        }
        check_types(
            &format!("call {}.{}", self.name, def.name),
            &def.params,
            &args,
        )?;
        if self.is_closed() {
            return Err(self.closed_err());
        }
        self.stats.on_call();
        let call = CallCell::new(args, self.rt.current(), self.rt.now());
        let dispatch = {
            let mut st = self.state.lock();
            if self.is_closed() {
                return Err(self.closed_err());
            }
            self.attach_or_queue(&mut st, entry, Arc::clone(&call))
        };
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
        // Wait for the reply.
        loop {
            {
                let mut st = call.st.lock();
                if let CallSt::Done(_) = &*st {
                    let CallSt::Done(r) = std::mem::replace(&mut *st, CallSt::Waiting) else {
                        unreachable!()
                    };
                    return r;
                }
            }
            self.rt.park();
        }
    }

    /// `#P`: attached-but-unaccepted plus queued calls (paper §2.5.1).
    pub(crate) fn pending(&self, entry: usize) -> usize {
        let st = self.state.lock();
        let es = &st.entries[entry];
        let attached = es
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Attached { .. }))
            .count();
        attached + es.waitq.len()
    }

    /// Shut the object down: fail all in-flight and queued calls, stop the
    /// pool, wake the manager (whose next primitive returns
    /// [`AlpsError::ObjectClosed`]).
    pub(crate) fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut victims: Vec<Arc<CallCell>> = Vec::new();
        {
            let mut st = self.state.lock();
            for es in &mut st.entries {
                victims.extend(es.waitq.drain(..));
                for s in &mut es.slots {
                    match std::mem::replace(s, Slot::Free) {
                        Slot::Free => {}
                        Slot::Attached { call }
                        | Slot::Accepted { call }
                        | Slot::Started { call }
                        | Slot::Ready { call, .. }
                        | Slot::Awaited { call, .. } => victims.push(call),
                    }
                }
            }
        }
        for call in victims {
            self.complete(&call, Err(self.closed_err()));
        }
        self.pool.shutdown();
        self.notifier.notify(&self.rt);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Builder assembling an ALPS object from entry definitions, an optional
/// manager, and a pool mode; [`spawn`](ObjectBuilder::spawn) creates the
/// object and starts its manager process.
///
/// # Examples
///
/// A minimal managed object (monitor-style mutual exclusion via
/// `execute`, paper §1):
///
/// ```
/// use alps_core::{EntryDef, Guard, ObjectBuilder, Selected, Ty, vals};
/// use alps_runtime::SimRuntime;
///
/// let sim = SimRuntime::new();
/// let out = sim
///     .run(|rt| {
///         let counter = ObjectBuilder::new("Counter")
///             .entry(
///                 EntryDef::new("Incr")
///                     .params([Ty::Int])
///                     .results([Ty::Int])
///                     .intercepted()
///                     .body(|_ctx, args| {
///                         Ok(vec![alps_core::Value::Int(args[0].as_int()? + 1)])
///                     }),
///             )
///             .manager(|mgr| {
///                 loop {
///                     let acc = mgr.accept("Incr")?;
///                     mgr.execute(acc)?;
///                 }
///             })
///             .spawn(rt)
///             .unwrap();
///         counter.call("Incr", vals![41i64]).unwrap()[0].as_int().unwrap()
///     })
///     .unwrap();
/// assert_eq!(out, 42);
/// ```
pub struct ObjectBuilder {
    name: String,
    entries: Vec<EntryDef>,
    manager: Option<ManagerBody>,
    pool: PoolMode,
    manager_prio: Priority,
}

impl fmt::Debug for ObjectBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectBuilder")
            .field("name", &self.name)
            .field("entries", &self.entries)
            .field("has_manager", &self.manager.is_some())
            .field("pool", &self.pool)
            .finish()
    }
}

impl ObjectBuilder {
    /// Start building an object with the given name.
    pub fn new(name: impl Into<String>) -> ObjectBuilder {
        ObjectBuilder {
            name: name.into(),
            entries: Vec::new(),
            manager: None,
            pool: PoolMode::default(),
            manager_prio: Priority::MANAGER,
        }
    }

    /// Add an entry (or local) procedure.
    pub fn entry(mut self, def: EntryDef) -> Self {
        self.entries.push(def);
        self
    }

    /// Install the manager process body.
    pub fn manager<F>(mut self, f: F) -> Self
    where
        F: FnMut(&mut ManagerCtx) -> Result<()> + Send + 'static,
    {
        self.manager = Some(Box::new(f));
        self
    }

    /// Choose how entry executions map to processes (default:
    /// [`PoolMode::PerSlot`]).
    pub fn pool(mut self, mode: PoolMode) -> Self {
        self.pool = mode;
        self
    }

    /// Scheduling priority of the manager process (default
    /// [`Priority::MANAGER`], the paper's recommendation that the manager
    /// run "at a higher priority compared to the other processes in the
    /// object"). Experiment E8 lowers it to quantify the recommendation.
    pub fn manager_priority(mut self, prio: Priority) -> Self {
        self.manager_prio = prio;
        self
    }

    /// Validate the definition, create the object, start its pool workers
    /// and manager process.
    ///
    /// # Errors
    ///
    /// [`AlpsError::BadDefinition`] for inconsistent definitions:
    /// duplicate entry names, a missing body, an intercept prefix longer
    /// than the signature, hidden parameters/results on a non-intercepted
    /// entry, interception without a manager, or an empty shared pool.
    pub fn spawn(self, rt: &Runtime) -> Result<ObjectHandle> {
        let bad = |reason: String| AlpsError::BadDefinition { reason };
        let mut by_name = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            if by_name.insert(e.name.clone(), i).is_some() {
                return Err(bad(format!("duplicate entry `{}`", e.name)));
            }
            if e.body.is_none() {
                return Err(bad(format!("entry `{}` has no body", e.name)));
            }
            if let Some(ic) = e.intercept {
                if ic.params > e.params.len() {
                    return Err(bad(format!(
                        "entry `{}` intercepts {} parameters but declares {}",
                        e.name,
                        ic.params,
                        e.params.len()
                    )));
                }
                if ic.results > e.results.len() {
                    return Err(bad(format!(
                        "entry `{}` intercepts {} results but declares {}",
                        e.name,
                        ic.results,
                        e.results.len()
                    )));
                }
                if self.manager.is_none() {
                    return Err(bad(format!(
                        "entry `{}` is intercepted but the object has no manager",
                        e.name
                    )));
                }
            } else if !e.hidden_params.is_empty() || !e.hidden_results.is_empty() {
                return Err(bad(format!(
                    "entry `{}` declares hidden parameters/results but is not intercepted \
                     (only the manager can supply or receive them)",
                    e.name
                )));
            }
        }
        if let PoolMode::Shared(0) = self.pool {
            return Err(bad("shared pool must have at least one process".into()));
        }
        let mut slot_base = Vec::with_capacity(self.entries.len());
        let mut total = 0usize;
        for e in &self.entries {
            slot_base.push(total);
            total += e.array;
        }
        let state = ObjState {
            entries: self
                .entries
                .iter()
                .map(|e| EntryState {
                    slots: (0..e.array).map(|_| Slot::Free).collect(),
                    waitq: VecDeque::new(),
                })
                .collect(),
        };
        let pool = Pool::new(rt.clone(), self.name.clone(), self.pool, total);
        let inner = Arc::new(ObjectInner {
            name: self.name.clone(),
            rt: rt.clone(),
            entries: self.entries,
            by_name,
            slot_base,
            state: Mutex::new(state),
            notifier: Notifier::new(),
            stats: ObjectStats::new(),
            closed: AtomicBool::new(false),
            pool,
            manager_error: Mutex::new(None),
        });
        if let Some(mut body) = self.manager {
            let mgr_inner = Arc::clone(&inner);
            rt.spawn_with(
                Spawn::new(format!("{}:manager", self.name))
                    .prio(self.manager_prio)
                    .daemon(true),
                move || {
                    let mut ctx = ManagerCtx::new(Arc::clone(&mgr_inner));
                    match body(&mut ctx) {
                        Ok(())
                        | Err(AlpsError::ObjectClosed { .. })
                        | Err(AlpsError::Runtime(_)) => {}
                        Err(e) => {
                            *mgr_inner.manager_error.lock() = Some(e);
                            mgr_inner.shutdown();
                        }
                    }
                },
            );
        }
        Ok(ObjectHandle {
            core: Arc::new(HandleCore { inner }),
        })
    }
}

struct HandleCore {
    inner: Arc<ObjectInner>,
}

impl Drop for HandleCore {
    fn drop(&mut self) {
        self.inner.shutdown();
    }
}

/// Handle to a live ALPS object. Cloning shares the handle; the object is
/// shut down when the last clone drops (or explicitly via
/// [`shutdown`](ObjectHandle::shutdown)).
#[derive(Clone)]
pub struct ObjectHandle {
    core: Arc<HandleCore>,
}

impl fmt::Debug for ObjectHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.core.inner.fmt(f)
    }
}

impl ObjectHandle {
    /// The object's name.
    pub fn name(&self) -> &str {
        &self.core.inner.name
    }

    /// Call an entry procedure and block until it finishes (ALPS
    /// `X.P(params, results)`, paper §2.2). The reply carries the public
    /// results.
    ///
    /// # Errors
    ///
    /// * [`AlpsError::UnknownEntry`] / [`AlpsError::LocalEntryCalled`] for
    ///   bad names;
    /// * arity/type mismatches against the public signature;
    /// * [`AlpsError::ObjectClosed`] if the object shuts down first;
    /// * [`AlpsError::BodyFailed`] if the entry body fails.
    pub fn call(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        inner.call_protocol(idx, args, true)
    }

    /// Call a procedure *as if from inside the object*: local procedures
    /// are callable and, when intercepted, go through the full
    /// attach/accept/start/finish protocol. Intended for language
    /// runtimes interpreting procedure bodies (the `alps-lang`
    /// interpreter); ordinary clients should use [`call`](Self::call).
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), except local procedures are permitted.
    pub fn call_from_inside(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        inner.call_protocol(idx, args, false)
    }

    /// `#P` for an entry: calls attached-but-unaccepted plus queued
    /// (paper §2.5.1; Ada `COUNT` / SR `?` analogue).
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] for bad names.
    pub fn pending(&self, entry: &str) -> Result<usize> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        Ok(inner.pending(idx))
    }

    /// Instrumentation counters for this object.
    pub fn stats(&self) -> ObjectStats {
        self.core.inner.stats.clone()
    }

    /// How many runtime processes the object's pool created (experiment
    /// E7's cost metric).
    pub fn pool_procs_spawned(&self) -> u64 {
        self.core.inner.pool.procs_spawned()
    }

    /// The pool mode the object runs with.
    pub fn pool_mode(&self) -> PoolMode {
        self.core.inner.pool.mode()
    }

    /// Shut the object down now: in-flight and future calls fail with
    /// [`AlpsError::ObjectClosed`]; the manager and pool workers exit.
    pub fn shutdown(&self) {
        self.core.inner.shutdown();
    }

    /// Whether the object has been shut down.
    pub fn is_closed(&self) -> bool {
        self.core.inner.is_closed()
    }

    /// If the manager exited with an error (other than the normal
    /// shutdown path), that error.
    pub fn manager_error(&self) -> Option<AlpsError> {
        self.core.inner.manager_error.lock().clone()
    }

    /// Number of body executions the pool has run.
    pub fn pool_jobs_executed(&self) -> u64 {
        self.core.inner.pool.jobs_executed()
    }
}
