//! ALPS objects: the call-protocol state machine, hidden procedure
//! arrays, implicit starts, and object lifecycle.
//!
//! Every hidden-procedure-array slot moves through the protocol of paper
//! §2.3/§2.5:
//!
//! ```text
//!            attach                accept            start
//! Free ───────────────▶ Attached ─────────▶ Accepted ──────▶ Started
//!   ▲                                          │                │ body runs
//!   │                 finish (combining, §2.7) │                ▼
//!   │◀─────────────────────────────────────────┘             Ready
//!   │                                  await                    │
//!   │◀───────────── Awaited ◀───────────────────────────────────┘
//!          finish
//! ```
//!
//! Calls that find no free slot wait in a FIFO queue and attach when a
//! slot frees (`#P` counts both attached-unaccepted and queued calls,
//! paper §2.5.1). Entries not listed in the manager's intercepts clause
//! are started implicitly at attach time (paper §2.3).
//!
//! # The fast path
//!
//! The invocation hot path is engineered so a steady-state call performs
//! no heap allocation for arity ≤ 4:
//!
//! * **[`EntryId`]** — entry names are interned once
//!   ([`ObjectHandle::entry_id`]); [`ObjectHandle::call_id`] skips the
//!   string hash lookup of [`ObjectHandle::call`].
//! * **Inline implicit starts** — a call to a non-intercepted entry that
//!   finds a free slot runs the body *in the calling process* (the caller
//!   would block for the result anyway), skipping the pool hand-off and
//!   two park/unpark round trips. Queued calls still dispatch to the pool
//!   when a slot frees.
//! * **[`CallCell`] recycling** — calls that do rendezvous (intercepted
//!   entries, queued calls) draw their cell from a per-object free list;
//!   the cell's old `times`/`st` mutex pair is collapsed into atomics plus
//!   a oneshot result word.
//! * **Lock-split state** — each entry owns its own slot array, wait
//!   queue, and lock ([`EntrySync`]), so unrelated entries do not contend;
//!   `#P` reads an atomic index without locking anything.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use alps_runtime::{
    tuning, CommitPoint, IntakeRing, Notifier, Priority, ProcId, Runtime, Spawn, SpinWait,
};
use parking_lot::Mutex;

use crate::entry::EntryDef;
use crate::error::{AlpsError, Result};
use crate::lane::{LaneOwner, Release, SpscLane};
use crate::manager::ManagerCtx;
use crate::pool::{Job, Pool, PoolMode};
use crate::proc_ctx::ProcCtx;
use crate::stats::ObjectStats;
use crate::supervise::{AdmissionPolicy, Backoff, OnRestart, RestartPolicy, RetryPolicy};
use crate::value::{check_types_lazy, Ty, ValVec};

/// The manager process body. It runs once, typically an endless
/// `loop { mgr.select(...)? ... }`; returning `Ok` ends the manager (the
/// object then no longer accepts intercepted calls), and
/// [`AlpsError::ObjectClosed`] is the normal exit path at shutdown.
pub type ManagerBody = Box<dyn FnMut(&mut ManagerCtx) -> Result<()> + Send + 'static>;

/// Interned handle to one entry of one object.
///
/// Minted by [`ObjectHandle::entry_id`] — the name is resolved exactly
/// once — and redeemed by [`ObjectHandle::call_id`], which skips the
/// per-call string hash lookup. `EntryId` is `Copy` and carries the
/// object's unique id, so using it on a different object is caught and
/// reported as [`AlpsError::ForeignEntryId`] rather than silently calling
/// the wrong entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId {
    pub(crate) obj: u64,
    pub(crate) idx: u32,
}

impl EntryId {
    /// Index of the entry in its object's entry table.
    pub fn index(&self) -> usize {
        self.idx as usize
    }
}

/// Process-wide object uid source backing [`EntryId`] validity checks.
static OBJECT_UID: AtomicU64 = AtomicU64::new(1);

/// Installed supervision configuration
/// ([`ObjectBuilder::supervise`] / [`on_restart`](ObjectBuilder::on_restart)
/// / [`state_init`](ObjectBuilder::state_init)).
pub(crate) struct SuperviseCfg {
    policy: RestartPolicy,
    on_restart: OnRestart,
    state_init: Option<Box<dyn Fn() + Send + Sync + 'static>>,
}

const CALL_WAITING: u32 = 0;
const CALL_DONE: u32 = 1;
/// The caller's deadline expired: it claimed the cell back and returned
/// [`AlpsError::Timeout`]. Completers that lose the `finish` CAS against
/// this state discard their result and tombstone the cell instead.
const CALL_CANCELLED: u32 = 2;
/// A protocol-side holder (intake drain, losing completer, shutdown
/// sweep) acknowledged the cancellation. The `CANCELLED → TOMBSTONE` CAS
/// has a unique winner, which is the one party entitled to account the
/// reap; the cell is recycled as usual once its `Arc` is unique (reset
/// clears the state word).
const CALL_TOMBSTONE: u32 = 3;

/// One in-flight rendezvous between a caller and the object.
///
/// The seed design carried two `Mutex`es per call (`times`, `st`); both
/// are collapsed here into plain atomics plus a oneshot result cell:
///
/// * `state` is the one-word call state. The happy path is a single
///   transition `CALL_WAITING → CALL_DONE`; a deadline-bounded caller may
///   instead win `CALL_WAITING → CALL_CANCELLED`, after which whichever
///   protocol-side holder discovers the cell moves it `CALL_CANCELLED →
///   CALL_TOMBSTONE` and reclaims it. Both completion and cancellation
///   are compare-exchanges on `CALL_WAITING`, so exactly one side wins.
/// * `result` is written exactly once, by the single completer that took
///   the cell out of its slot/queue under the entry lock, *before* the
///   `SeqCst` CAS to `CALL_DONE`; the caller reads it only after a
///   `SeqCst` load observes `CALL_DONE`. If the CAS loses to a
///   cancellation the caller is gone for good — the written result is
///   dead and `reset` clears it. That handoff is the entire safety
///   argument for the `unsafe impl Sync`.
/// * `waiting` is the caller's "I am about to park" announcement. The
///   completer skips the (expensive) `rt.unpark` when it is false — i.e.
///   when the caller is still in its spin/yield phase. The flag and the
///   state word form a store-buffering pair, which is why both sides use
///   `SeqCst`: the caller stores `waiting = true` then loads `state`, the
///   completer stores `state = DONE` then loads `waiting` — sequential
///   consistency guarantees at least one side observes the other, so a
///   parked caller is always unparked.
///
/// Cells are recycled through a per-object free list
/// ([`ObjectInner::release_cell`]); a cell is only reset when its `Arc` is
/// unique, so no stale reader can observe the reset.
pub(crate) struct CallCell {
    /// Argument tuple. Interior-mutable so the start path can *move* the
    /// arguments into the body instead of cloning them out of a shared
    /// `Arc` — see [`args`](Self::args) / [`take_args`](Self::take_args)
    /// for the ownership discipline that makes the `&self` access sound.
    args: UnsafeCell<ValVec>,
    pub(crate) caller: ProcId,
    pub(crate) t_call: u64,
    pub(crate) t_attach: AtomicU64,
    pub(crate) t_start: AtomicU64,
    state: AtomicU32,
    waiting: AtomicBool,
    result: UnsafeCell<Option<Result<ValVec>>>,
}

// SAFETY: `result` is written once by the unique completer before the
// Release store on `state` and read once by the caller after an Acquire
// load. `args` is written before the cell is published (unique
// ownership in `new`/`reset`) and afterwards touched only by the
// protocol side that currently owns the cell's slot/queue position —
// manager select/accept/start, all serialized by the entry lock — never
// by the caller, and never after `take_args`. All other fields are
// immutable-after-publish or atomic.
unsafe impl Sync for CallCell {}

impl CallCell {
    fn new(args: ValVec, caller: ProcId, t_call: u64) -> CallCell {
        CallCell {
            args: UnsafeCell::new(args),
            caller,
            t_call,
            t_attach: AtomicU64::new(0),
            t_start: AtomicU64::new(0),
            state: AtomicU32::new(CALL_WAITING),
            waiting: AtomicBool::new(false),
            result: UnsafeCell::new(None),
        }
    }

    /// Borrow the argument tuple.
    ///
    /// Sound because every reader is on the protocol side of the cell —
    /// guard evaluation over `Attached` slots, intercept-prefix
    /// extraction at accept — and those all run in the object's single
    /// manager process under the entry lock; the caller never reads
    /// `args` after submitting the cell.
    pub(crate) fn args(&self) -> &ValVec {
        // SAFETY: see above — reads are serialized by the entry lock and
        // `take_args` (the only mutation) runs under that same lock, in
        // the same manager process, at the `Accepted → Started`
        // transition after which no reader looks at `args` again.
        unsafe { &*self.args.get() }
    }

    /// Move the argument tuple out, leaving an empty one. Called exactly
    /// once per call round, at the `Attached/Accepted → Started`
    /// transition (implicit start, `start`, or `execute`), under the
    /// entry lock, by the manager that owns the slot. The restart and
    /// shutdown sweeps never read `args`, so a taken tuple is never
    /// missed.
    pub(crate) fn take_args(&self) -> ValVec {
        // SAFETY: unique protocol-side accessor under the entry lock; no
        // `args()` borrow is live across this call (borrows end before
        // the slot-state transition that reaches here).
        unsafe { std::mem::take(&mut *self.args.get()) }
    }

    /// Deliver the result. Must be called at most once per call round, by
    /// the completer that removed this cell from the slot/queue. Returns
    /// whether the result was actually delivered — `false` means the
    /// caller cancelled first (deadline expiry), is gone, and must *not*
    /// be unparked.
    fn finish(&self, r: Result<ValVec>) -> bool {
        // SAFETY: single completer per round (slot-state ownership); the
        // caller cannot read until the CAS below succeeds, and after a
        // cancellation it never reads at all (the write is dead and reset
        // clears it). SeqCst (not just Release) because this CAS and the
        // completer's subsequent `waiting` load pair with the caller's
        // `waiting` store / `state` load — see the struct docs.
        unsafe {
            *self.result.get() = Some(r);
        }
        self.state
            .compare_exchange(CALL_WAITING, CALL_DONE, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Caller side, deadline path: claim the cell back. Succeeds iff no
    /// completer has delivered yet; on success the caller owns the
    /// `Timeout` outcome and every later completion attempt is discarded.
    fn cancel(&self) -> bool {
        self.state
            .compare_exchange(
                CALL_WAITING,
                CALL_CANCELLED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Whether the caller abandoned this call (and nobody tombstoned it
    /// yet). Holders use it to skip dead cells cheaply before committing
    /// work to them.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::SeqCst) == CALL_CANCELLED
    }

    /// Acknowledge a cancellation. The unique winner of this CAS is the
    /// one party entitled to account the reap.
    fn claim_tombstone(&self) -> bool {
        self.state
            .compare_exchange(
                CALL_CANCELLED,
                CALL_TOMBSTONE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Caller side: take the result if the call has completed.
    fn try_take(&self) -> Option<Result<ValVec>> {
        if self.state.load(Ordering::SeqCst) == CALL_DONE {
            // SAFETY: the completer's writes happen-before this read via
            // the load above, and only the one caller consumes.
            unsafe { (*self.result.get()).take() }
        } else {
            None
        }
    }

    /// Reset for reuse. Requires unique ownership (`Arc::get_mut`).
    fn reset(&mut self, args: ValVec, caller: ProcId, t_call: u64) {
        *self.args.get_mut() = args;
        self.caller = caller;
        self.t_call = t_call;
        *self.t_attach.get_mut() = 0;
        *self.t_start.get_mut() = 0;
        *self.state.get_mut() = CALL_WAITING;
        *self.waiting.get_mut() = false;
        *self.result.get_mut() = None;
    }
}

/// Slot states of the hidden-procedure-array protocol.
pub(crate) enum Slot {
    Free,
    Attached {
        call: Arc<CallCell>,
    },
    Accepted {
        call: Arc<CallCell>,
    },
    Started {
        call: Arc<CallCell>,
    },
    /// An implicit call is executing its body inline in the caller's own
    /// process (the fast path) — there is no parked caller to answer, so
    /// no cell is needed; the caller discovers shutdown by finding the
    /// slot no longer in this state.
    InlineBusy,
    /// Body finished; `outcome` is the full implementation-side result
    /// list (public ++ hidden) or a failure message.
    Ready {
        call: Arc<CallCell>,
        outcome: std::result::Result<ValVec, String>,
    },
    /// Manager executed `await`; the non-intercepted public results wait
    /// here for `finish` to release them to the caller.
    Awaited {
        call: Arc<CallCell>,
        remainder: ValVec,
    },
    /// The manager cancelled a `Started` call
    /// ([`ManagerCtx::cancel`](crate::ManagerCtx::cancel)): the caller was
    /// answered with [`AlpsError::Cancelled`] immediately, but the body is
    /// still running and owns the slot until `body_done` discards its
    /// outcome and frees it.
    Abandoned,
}

impl Slot {
    pub(crate) fn state_name(&self) -> &'static str {
        match self {
            Slot::Free => "free",
            Slot::Attached { .. } => "attached",
            Slot::Accepted { .. } => "accepted",
            Slot::Started { .. } => "started",
            Slot::InlineBusy => "started",
            Slot::Ready { .. } => "ready",
            Slot::Awaited { .. } => "awaited",
            Slot::Abandoned => "abandoned",
        }
    }
}

/// Lock-protected per-entry protocol state.
pub(crate) struct EntryState {
    pub(crate) slots: Vec<Slot>,
    pub(crate) waitq: VecDeque<Arc<CallCell>>,
}

/// One entry's synchronization block: its own lock (so unrelated entries
/// never contend) plus the narrow manager-visible index — atomic counts
/// that `#P`, guard conditions, and monitoring read without taking any
/// lock.
///
/// Count maintenance (always under `st`):
/// * `attached`: +1 attach of an intercepted call, −1 accept, 0 at
///   shutdown;
/// * `queued`: +1 queue push, −1 queue pull, 0 at shutdown;
/// * `ready`: +1 body completion of an intercepted call, −1 await, 0 at
///   shutdown.
///
/// `in_ring` is the exception: it counts this entry's calls sitting in the
/// object's intake ring, is incremented by the *caller* before its push
/// (no lock held) and decremented by whoever pops the item (drain or
/// shutdown sweep). It makes `#P` cover calls the manager has not drained
/// yet, so a guard like `when #P > 0` cannot miss a call that is already
/// committed to the ring.
pub(crate) struct EntrySync {
    pub(crate) st: Mutex<EntryState>,
    pub(crate) attached: AtomicUsize,
    pub(crate) queued: AtomicUsize,
    pub(crate) ready: AtomicUsize,
    pub(crate) in_ring: AtomicUsize,
}

impl EntrySync {
    fn new(slots: usize) -> EntrySync {
        EntrySync {
            st: Mutex::new(EntryState {
                slots: (0..slots).map(|_| Slot::Free).collect(),
                waitq: VecDeque::new(),
            }),
            attached: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
            in_ring: AtomicUsize::new(0),
        }
    }
}

pub(crate) struct ObjectInner {
    pub(crate) name: String,
    pub(crate) rt: Runtime,
    pub(crate) uid: u64,
    pub(crate) entries: Vec<EntryDef>,
    pub(crate) by_name: HashMap<String, usize>,
    pub(crate) slot_base: Vec<usize>,
    pub(crate) estates: Vec<EntrySync>,
    pub(crate) notifier: Notifier,
    pub(crate) stats: ObjectStats,
    pub(crate) closed: AtomicBool,
    /// Set when an entry body panics in a poisoning object
    /// ([`ObjectBuilder::poison_on_panic`]): the object's invariants may
    /// be corrupt, so new calls fail fast with
    /// [`AlpsError::ObjectPoisoned`]. Poisoned ≠ closed — the manager
    /// keeps running and in-flight calls complete normally.
    pub(crate) poisoned: AtomicBool,
    poison_on_panic: bool,
    pub(crate) pool: Pool,
    pub(crate) manager_error: Mutex<Option<AlpsError>>,
    /// Recycled [`CallCell`]s; bounded by `cell_cap`.
    cell_pool: Mutex<Vec<Arc<CallCell>>>,
    cell_cap: usize,
    /// `EntryDef::full_results()` precomputed per entry so the per-call
    /// result type check does not allocate.
    pub(crate) full_results: Vec<Vec<Ty>>,
    /// Lock-free call intake: callers of *intercepted* entries push
    /// `(entry, cell)` here instead of taking the entry lock; the manager
    /// drains in batches ([`drain_intake`](ObjectInner::drain_intake)).
    /// Implicit entries keep the direct attach path — they have no
    /// manager to drain for them.
    pub(crate) intake: IntakeRing<(u32, Arc<CallCell>)>,
    /// Serializes ring consumers (manager drain, shutdown sweep, a
    /// producer's post-close self-sweep) so each cell has one completer.
    intake_drain: Mutex<()>,
    /// The adaptive SPSC fast lane (see [`crate::lane`]): a private
    /// single-producer queue for the one caller currently holding
    /// `lane_owner`. The drain loop empties it *before* the shared ring
    /// on every pass; `in_ring` accounting covers lane residents too, so
    /// `#P` and shutdown semantics are identical on both routes.
    pub(crate) lane: SpscLane<(u32, Arc<CallCell>)>,
    /// Ownership word of the fast lane — who may push, and the mutual
    /// exclusion between a push in progress and a demotion.
    pub(crate) lane_owner: LaneOwner,
    /// Streak bookkeeping driving promotion, written only by the drain
    /// loop (under `intake_drain`): the last ring producer seen, stored
    /// as `pid + 1` (0 = none), and how many consecutive ring pops it
    /// has supplied.
    lane_last_producer: AtomicU64,
    lane_streak: AtomicU32,
    /// Consecutive manager passes that reached the pre-park path with an
    /// active-but-empty lane; at [`tuning::LANE_IDLE_DEMOTE_PASSES`] the
    /// lane is released (see `wait_for_work`).
    pub(crate) lane_dry: AtomicU32,
    /// Promotion threshold ([`ObjectBuilder::lane_promote_after`];
    /// default [`tuning::LANE_PROMOTE_STREAK`], `u32::MAX` disables).
    lane_promote_streak: u32,
    /// True while the manager is between wakeup and its pre-park
    /// condition re-check; callers use it to decide whether yielding (the
    /// manager will service the ring soon) beats parking (it will not).
    pub(crate) mgr_active: AtomicBool,
    /// Storm mode: the manager yield-polls the intake ring instead of
    /// parking, so the whole submit→serve→reply cycle runs on scheduler
    /// rotation with no futex traffic. Set by `drain_intake` whenever a
    /// drain finds ≥ 2 cells — two calls physically queued at once proves
    /// concurrent callers, which a lone synchronous caller (never more
    /// than one call in flight) cannot fake — and cleared after a dry
    /// poll budget in `wait_for_work`.
    pub(crate) mgr_poll: AtomicBool,
    /// Restart generation: bumped at the start of every supervised
    /// restart, *before* the in-flight sweep. Manager primitives capture
    /// it at [`ManagerCtx`] creation and re-check it under the entry lock
    /// before committing, so a pre-restart manager can never accept,
    /// start, or finish into the post-restart object — stale replies are
    /// refused with [`AlpsError::ObjectRestarting`] instead of delivered.
    pub(crate) generation: AtomicU64,
    /// Supervision configuration; `None` for unsupervised objects.
    supervise: Option<SuperviseCfg>,
    /// Serializes restarts and holds the timestamps the
    /// [`RestartPolicy::RestartTransient`] budget window is judged
    /// against. The supervisor loop in [`ObjectBuilder::spawn`] takes it
    /// (empty critical section) as a barrier so the manager body never
    /// re-enters while a sweep or state rebuild is still in progress.
    pub(crate) restart_times: Mutex<Vec<u64>>,
    /// A restart was refused — budget exhausted, injected `"restart"`
    /// fault, [`RestartPolicy::Never`], or a panicking `state_init`. The
    /// poison is permanent: callers get [`AlpsError::ObjectPoisoned`],
    /// not the transient [`AlpsError::ObjectRestarting`].
    perm_failed: AtomicBool,
    /// What the call protocol does when the intake ring is full.
    admission: AdmissionPolicy,
    /// [`AdmissionPolicy::Cooperative`] watermark flag, read by
    /// [`ManagerCtx::overloaded`](crate::ManagerCtx::overloaded): set when
    /// a push leaves occupancy ≥ `high`, cleared when a drain leaves it
    /// ≤ `low`.
    pub(crate) mgr_overloaded: AtomicBool,
    /// Epoch bumped whenever ring space frees (drain, shutdown sweep,
    /// restart): `Block`/`Cooperative` producers facing a full ring park
    /// here instead of yield-spinning.
    space_notifier: Notifier,
}

impl fmt::Debug for ObjectInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Object")
            .field("name", &self.name)
            .field("entries", &self.entries.len())
            .field("closed", &self.closed.load(Ordering::SeqCst))
            .finish()
    }
}

impl ObjectInner {
    pub(crate) fn entry_idx(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| AlpsError::UnknownEntry {
                object: self.name.clone(),
                entry: name.to_string(),
            })
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    pub(crate) fn closed_err(&self) -> AlpsError {
        AlpsError::ObjectClosed {
            object: self.name.clone(),
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn poisoned_err(&self) -> AlpsError {
        AlpsError::ObjectPoisoned {
            object: self.name.clone(),
        }
    }

    pub(crate) fn restarting_err(&self) -> AlpsError {
        AlpsError::ObjectRestarting {
            object: self.name.clone(),
        }
    }

    fn overloaded_err(&self) -> AlpsError {
        AlpsError::Overloaded {
            object: self.name.clone(),
        }
    }

    /// The error a new call gets while the object is poisoned: transient
    /// ([`AlpsError::ObjectRestarting`], retry-worthy) while a supervised
    /// restart is still possible, permanent ([`AlpsError::ObjectPoisoned`])
    /// otherwise.
    fn poison_reject(&self) -> AlpsError {
        if self.supervise.is_some() && !self.perm_failed.load(Ordering::SeqCst) {
            self.restarting_err()
        } else {
            self.poisoned_err()
        }
    }

    /// Draw a call cell from the free list, or allocate one.
    fn acquire_cell(&self, args: ValVec, caller: ProcId, t_call: u64) -> Arc<CallCell> {
        if let Some(mut arc) = self.cell_pool.lock().pop() {
            if let Some(cell) = Arc::get_mut(&mut arc) {
                cell.reset(args, caller, t_call);
                return arc;
            }
            // A stale clone still exists (should not happen — cells are
            // pooled only when unique); fall through and allocate.
        }
        Arc::new(CallCell::new(args, caller, t_call))
    }

    /// Return a finished cell to the free list if no other clone survives.
    fn release_cell(&self, call: Arc<CallCell>) {
        if Arc::strong_count(&call) != 1 {
            return;
        }
        let mut pool = self.cell_pool.lock();
        if pool.len() < self.cell_cap {
            pool.push(call);
        }
    }

    /// Complete a call: deliver the result and unpark the caller — unless
    /// the caller has not announced a park (`waiting` false), in which
    /// case it is still in its spin/yield phase and will pick the result
    /// up itself; skipping `rt.unpark` there saves the proc-table lookup
    /// and wake syscall on the contended fast path. The SeqCst
    /// store-then-load on the completer side pairs with the caller's
    /// SeqCst `waiting`-store-then-`state`-load (see [`CallCell`]).
    ///
    /// Returns whether the result reached the caller. `false` means the
    /// caller cancelled first (deadline expiry): the delivery is
    /// discarded, the cell is tombstoned here, and — critically — no
    /// unpark is issued, so the departed caller's park slot is never
    /// handed a stray permit (the lost-wakeup-class hazard under
    /// cancellation).
    pub(crate) fn complete(&self, call: &Arc<CallCell>, result: Result<ValVec>) -> bool {
        let ok = result.is_ok();
        if call.finish(result) {
            if ok {
                let now = self.rt.now();
                self.stats.on_complete(now.saturating_sub(call.t_call));
            }
            if call.waiting.load(Ordering::SeqCst) {
                self.rt.unpark(call.caller);
            }
            true
        } else {
            if call.claim_tombstone() {
                self.stats.on_reap();
            }
            false
        }
    }

    /// Attach a call to a free slot of `entry`, or queue it. Returns an
    /// implicit-start dispatch if the entry is not intercepted.
    /// Caller must run the returned dispatch *after* releasing the entry
    /// lock it passed in.
    pub(crate) fn attach_or_queue(
        self: &Arc<Self>,
        es: &mut EntryState,
        entry: usize,
        call: Arc<CallCell>,
    ) -> Option<(usize, ValVec)> {
        let free = es.slots.iter().position(|s| matches!(s, Slot::Free));
        match free {
            Some(i) => self.attach_to_slot(es, entry, i, call),
            None => {
                es.waitq.push_back(call);
                self.estates[entry].queued.fetch_add(1, Ordering::SeqCst);
                // #P changed; manager `when` conditions may depend on it.
                self.notifier.notify(&self.rt);
                None
            }
        }
    }

    /// Attach `call` to the known-free slot `i`.
    pub(crate) fn attach_to_slot(
        self: &Arc<Self>,
        es: &mut EntryState,
        entry: usize,
        i: usize,
        call: Arc<CallCell>,
    ) -> Option<(usize, ValVec)> {
        let now = self.rt.now();
        call.t_attach.store(now, Ordering::Relaxed);
        self.stats.on_attach(now.saturating_sub(call.t_call));
        let def = &self.entries[entry];
        if def.intercept.is_some() {
            es.slots[i] = Slot::Attached { call };
            self.estates[entry].attached.fetch_add(1, Ordering::SeqCst);
            self.notifier.notify(&self.rt);
            None
        } else {
            // Implicit start (paper §2.3: calls to procedures not listed
            // in the intercepts clause are started implicitly). The
            // intercept prefix is empty, so the body takes the full
            // argument tuple — moved out of the cell, not cloned: nobody
            // reads `args` once the slot is `Started`.
            call.t_start.store(now, Ordering::Relaxed);
            let params = call.take_args();
            es.slots[i] = Slot::Started { call };
            self.stats.on_implicit_start();
            Some((i, params))
        }
    }

    /// Free slot `i` of `entry` and attach the next queued call, if any.
    /// Returns an implicit-start dispatch to run after unlocking.
    pub(crate) fn free_slot_and_pull(
        self: &Arc<Self>,
        es: &mut EntryState,
        entry: usize,
        i: usize,
    ) -> Option<(usize, ValVec)> {
        es.slots[i] = Slot::Free;
        if let Some(next) = es.waitq.pop_front() {
            self.estates[entry].queued.fetch_sub(1, Ordering::SeqCst);
            self.attach_to_slot(es, entry, i, next)
        } else {
            None
        }
    }

    /// Hand a started slot's execution to the pool.
    pub(crate) fn dispatch_body(self: &Arc<Self>, entry: usize, slot: usize, params: ValVec) {
        let key = self.slot_base[entry] + slot;
        self.pool.dispatch(
            key,
            Job::Body {
                obj: Arc::downgrade(self),
                entry,
                slot,
                params,
            },
        );
    }

    /// Execute the body of `entry` in the current process and report the
    /// outcome to the state machine.
    pub(crate) fn run_body(self: &Arc<Self>, entry: usize, slot: usize, params: ValVec) {
        let outcome = self.exec_checked_body(entry, slot, params);
        self.body_done(entry, slot, outcome);
    }

    /// Run the body under `catch_unwind` and type-check its results.
    pub(crate) fn exec_checked_body(
        self: &Arc<Self>,
        entry: usize,
        slot: usize,
        params: ValVec,
    ) -> std::result::Result<ValVec, String> {
        let def = &self.entries[entry];
        let body = def
            .body
            .as_ref()
            .expect("validated at build: every entry has a body");
        let mut ctx = ProcCtx::new(Arc::clone(self), entry, slot);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Inside the unwind boundary so an injected `Panic` at the
            // `"body"` step is indistinguishable from a real body panic.
            if self.rt.fault_point("body") {
                return Err(AlpsError::Custom("injected drop: body".into()));
            }
            body(&mut ctx, params)
        }));
        match outcome {
            Ok(Ok(results)) => {
                match check_types_lazy(&self.full_results[entry], &results, || {
                    format!("results of {}.{}", self.name, def.name)
                }) {
                    Ok(()) => Ok(results),
                    Err(e) => Err(e.to_string()),
                }
            }
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => {
                // A panic (not an error return) may have unwound the body
                // mid-update: in a poisoning object, fail all future calls
                // fast rather than letting them observe torn state. A
                // supervised object additionally attempts a restart (which
                // clears the poison again on success).
                if self.poison_on_panic || self.supervise.is_some() {
                    self.poisoned.store(true, Ordering::SeqCst);
                }
                if self.supervise.is_some() {
                    self.handle_body_panic();
                }
                Err(panic_message(payload.as_ref()))
            }
        }
    }

    /// Record a body's completion: intercepted entries become `Ready` for
    /// the manager; implicit entries answer the caller directly.
    fn body_done(
        self: &Arc<Self>,
        entry: usize,
        slot: usize,
        outcome: std::result::Result<ValVec, String>,
    ) {
        let mut dispatch = None;
        let mut made_ready = false;
        {
            let sync = &self.estates[entry];
            let mut es = sync.st.lock();
            let s = &mut es.slots[slot];
            let call = match std::mem::replace(s, Slot::Free) {
                Slot::Started { call } => call,
                Slot::Abandoned => {
                    // The manager cancelled this call mid-body: the caller
                    // was already answered, so the outcome is discarded and
                    // the slot simply frees up for the next queued call.
                    let dispatch = self.free_slot_and_pull(&mut es, entry, slot);
                    drop(es);
                    if let Some((i, params)) = dispatch {
                        self.dispatch_body(entry, i, params);
                    }
                    return;
                }
                other => {
                    // Object likely shut down underneath the body.
                    *s = other;
                    return;
                }
            };
            let now = self.rt.now();
            let started = call.t_start.load(Ordering::Relaxed);
            self.stats.on_service(now.saturating_sub(started));
            let def = &self.entries[entry];
            if def.intercept.is_some() {
                if outcome.is_err() {
                    self.stats.on_body_failure();
                }
                es.slots[slot] = Slot::Ready { call, outcome };
                sync.ready.fetch_add(1, Ordering::SeqCst);
                made_ready = true;
            } else {
                match outcome {
                    Ok(results) => {
                        self.complete(&call, Ok(results));
                    }
                    Err(msg) => {
                        self.stats.on_body_failure();
                        self.complete(
                            &call,
                            Err(AlpsError::BodyFailed {
                                entry: def.name.clone(),
                                message: msg,
                            }),
                        );
                    }
                }
                dispatch = self.free_slot_and_pull(&mut es, entry, slot);
            }
        }
        if made_ready {
            // Outside the entry lock: the notifier takes its own lock only
            // when someone is parked.
            self.notifier.notify(&self.rt);
        }
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
    }

    /// Publish `(entry, call)` to the intake ring, applying the object's
    /// [`AdmissionPolicy`] when the ring is full. On success the
    /// empty→non-empty notify contract is honored and the Cooperative
    /// high watermark is checked. On a shed, the entry's `in_ring` count
    /// is already rolled back and [`AlpsError::Overloaded`] returned — the
    /// caller owns the (unpublished) cell and must release it.
    fn push_intake(&self, entry: usize, call: &Arc<CallCell>) -> Result<()> {
        let sync = &self.estates[entry];
        sync.in_ring.fetch_add(1, Ordering::SeqCst);
        let mut item = (entry as u32, Arc::clone(call));
        // Backpressure epoch snapshot: `None` until the first full-ring
        // encounter; a push retried after snapshotting that still finds
        // the ring full parks until a drain moves the epoch past it.
        let mut seen: Option<u64> = None;
        loop {
            match self.intake.push(item) {
                Ok(was_empty) => {
                    if was_empty {
                        self.notifier.notify(&self.rt);
                    }
                    if let AdmissionPolicy::Cooperative { high, .. } = self.admission {
                        if self.intake.len() >= high
                            && !self.mgr_overloaded.swap(true, Ordering::SeqCst)
                        {
                            self.stats.on_overload_flip();
                        }
                    }
                    return Ok(());
                }
                Err(back) => {
                    // Ring full. No direct-attach fallback — that would
                    // let this call overtake ring residents of the same
                    // entry and break per-entry FIFO.
                    if self.is_closed() {
                        sync.in_ring.fetch_sub(1, Ordering::SeqCst);
                        drop(back);
                        return Err(self.closed_err());
                    }
                    item = back;
                    match self.admission {
                        AdmissionPolicy::ShedNewest => {
                            sync.in_ring.fetch_sub(1, Ordering::SeqCst);
                            self.stats.on_shed();
                            return Err(self.overloaded_err());
                        }
                        AdmissionPolicy::ShedOldest => {
                            // Evict the oldest undrained ring resident —
                            // the head of its entry's FIFO, so per-entry
                            // order still holds — and retry our push. The
                            // drain lock makes us the cell's sole
                            // completer.
                            let _g = self.intake_drain.lock();
                            if let Some((veidx, victim)) = self.intake.pop() {
                                self.estates[veidx as usize]
                                    .in_ring
                                    .fetch_sub(1, Ordering::SeqCst);
                                if victim.is_cancelled() {
                                    if victim.claim_tombstone() {
                                        self.stats.on_reap();
                                    }
                                    self.release_cell(victim);
                                } else {
                                    self.stats.on_shed();
                                    self.complete(&victim, Err(self.overloaded_err()));
                                }
                            }
                        }
                        AdmissionPolicy::Block | AdmissionPolicy::Cooperative { .. } => {
                            // A full ring IS the high watermark.
                            if matches!(self.admission, AdmissionPolicy::Cooperative { .. })
                                && !self.mgr_overloaded.swap(true, Ordering::SeqCst)
                            {
                                self.stats.on_overload_flip();
                            }
                            match seen {
                                None => {
                                    // First encounter: snapshot the space
                                    // epoch, then yield once — the manager
                                    // is often mid-drain already.
                                    seen = Some(self.space_notifier.epoch());
                                    self.rt.yield_now();
                                }
                                Some(s) => {
                                    // The retry between snapshot and here
                                    // closes the missed-wakeup race: any
                                    // drain after the snapshot moves the
                                    // epoch past `s`.
                                    self.space_notifier.wait_past(&self.rt, s);
                                    seen = None;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether any submitted call is awaiting drain — in the shared
    /// intake ring *or* the SPSC fast lane. Every manager-side "is there
    /// work" check (pre-park re-check, poll loop, drain early-out) must
    /// use this rather than `intake.is_empty()` alone, or a lane push
    /// could be parked past and lost.
    pub(crate) fn has_intake_work(&self) -> bool {
        !self.intake.is_empty() || !self.lane.is_empty()
    }

    /// Submit an intercepted call: over the private SPSC lane when this
    /// caller currently owns it, otherwise the shared MPSC intake ring.
    /// The lane path is the tail-shaving fast route — no CAS retry loop,
    /// no admission machinery — and is correct because `begin_push`
    /// fails the instant ownership is lost, falling back to the ring.
    fn submit_call(&self, entry: usize, call: &Arc<CallCell>) -> Result<()> {
        let me = call.caller.as_u64();
        if self.entries[entry].fast_lane && self.lane_owner.is(me) && self.lane_owner.begin_push(me)
        {
            let sync = &self.estates[entry];
            sync.in_ring.fetch_add(1, Ordering::SeqCst);
            match self.lane.push((entry as u32, Arc::clone(call))) {
                Ok(was_empty) => {
                    self.lane_owner.end_push(me);
                    self.stats.on_lane_push();
                    if was_empty {
                        self.notifier.notify(&self.rt);
                    }
                    return Ok(());
                }
                Err(_) => {
                    // Lane full — only reachable when this caller
                    // abandoned earlier calls on deadline while the
                    // manager stalled. Demote ourselves *before* the
                    // ring fallback: the drain empties the lane first,
                    // so our older lane items still replay before this
                    // one and per-caller FIFO holds.
                    sync.in_ring.fetch_sub(1, Ordering::SeqCst);
                    self.lane_owner.end_push(me);
                    if matches!(self.lane_owner.try_release(), Release::Released(_)) {
                        self.stats.on_lane_demote();
                        // Commit point (no locks held): the self-demote
                        // races the manager's drain-side lane control.
                        self.rt.sim_point(CommitPoint::LaneSwitch);
                    }
                }
            }
        }
        self.push_intake(entry, call)
    }

    /// The full blocking call protocol: validate, attach or queue, wait
    /// for the reply.
    pub(crate) fn call_protocol(
        self: &Arc<Self>,
        entry: usize,
        args: ValVec,
        external: bool,
    ) -> Result<ValVec> {
        let def = &self.entries[entry];
        if external && def.local {
            return Err(AlpsError::LocalEntryCalled {
                object: self.name.clone(),
                entry: def.name.clone(),
            });
        }
        check_types_lazy(&def.params, &args, || {
            format!("call {}.{}", self.name, def.name)
        })?;
        if self.is_closed() {
            return Err(self.closed_err());
        }
        if self.is_poisoned() {
            self.stats.on_poison_reject();
            return Err(self.poison_reject());
        }
        self.stats.on_call();
        let t_call = self.rt.now();

        // Fast path: an implicit (non-intercepted) entry with a free slot
        // runs its body inline in this process — the caller would block
        // for the result anyway, so this is observationally the same
        // rendezvous minus the pool hand-off and two park/unpark pairs,
        // and it touches no heap at all.
        if def.intercept.is_none() {
            let claimed = {
                let mut es = self.estates[entry].st.lock();
                if self.is_closed() {
                    return Err(self.closed_err());
                }
                match es.slots.iter().position(|s| matches!(s, Slot::Free)) {
                    Some(i) => {
                        es.slots[i] = Slot::InlineBusy;
                        Some(i)
                    }
                    None => None,
                }
            };
            if let Some(i) = claimed {
                return self.run_inline(entry, i, args, t_call);
            }
        }

        // Slow path: rendezvous through a (recycled) call cell.
        let call = self.acquire_cell(args, self.rt.current(), t_call);

        if def.intercept.is_some() {
            // Intercepted entries submit through the lock-free intake
            // ring; the manager drains it in batches. Only the push that
            // flips the ring empty→non-empty notifies — that producer is
            // the one the (possibly parked) manager is owed a wakeup by.
            if self.rt.fault_point("intake_push") {
                // Injected lost submission: the cell is never published.
                // A deadline-bounded caller recovers via Timeout; a plain
                // caller hangs — in simulation, as a detected deadlock.
                let r = self.wait_for_reply(&call, true);
                self.release_cell(call);
                return r;
            }
            // Commit point: the next step publishes this call into the
            // lane/ring, racing the manager's drain. No locks held.
            self.rt.sim_point(CommitPoint::IntakePush);
            if let Err(e) = self.submit_call(entry, &call) {
                self.release_cell(call);
                return Err(e);
            }
            // Shutdown may have raced the push: its sweep can miss a slot
            // whose publish was still in this core's store buffer when it
            // popped. The fence orders our publish before the load below,
            // so either shutdown's sweep sees our item, or we see
            // `closed` here and sweep it (or a classified victim) out
            // ourselves.
            std::sync::atomic::fence(Ordering::SeqCst);
            if self.is_closed() {
                self.sweep_intake();
            }
            let r = self.wait_for_reply(&call, true);
            self.release_cell(call);
            return r;
        }

        // Implicit entry, all slots busy: queue directly under the entry
        // lock (no manager exists to drain a ring for us).
        let dispatch = {
            let mut es = self.estates[entry].st.lock();
            if self.is_closed() {
                return Err(self.closed_err());
            }
            self.attach_or_queue(&mut es, entry, Arc::clone(&call))
        };
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
        let r = self.wait_for_reply(&call, false);
        self.release_cell(call);
        r
    }

    /// Block until `call` completes, adaptively: a short pure-spin burst,
    /// then — while the manager is awake — bounded yielding sized by the
    /// service-time EWMA, then announce (`waiting = true`) and park.
    ///
    /// `adaptive` is false for non-ring waits (queued implicit calls,
    /// whose completer is a pool worker, not the manager) and the
    /// spin/yield phases are skipped entirely on the simulation executor,
    /// where a blocked process can never observe progress by spinning.
    fn wait_for_reply(&self, call: &Arc<CallCell>, adaptive: bool) -> Result<ValVec> {
        if adaptive && !self.rt.is_sim() {
            let mut sw = SpinWait::new(tuning::CALLER_SPIN_ROUNDS);
            while sw.spin() {
                if let Some(r) = call.try_take() {
                    self.stats.on_spin_resolved();
                    return r;
                }
            }
            // Yield phase: worth it only while the manager is running —
            // each yield hands it the CPU (single-core) or leaves it
            // draining (multi-core). Budget scales with how long one
            // service round is expected to take (EWMA is in ticks = µs).
            let budget = tuning::caller_yield_budget(self.stats.ewma_service_ticks());
            let mut spent = 0;
            while spent < budget && self.mgr_active.load(Ordering::SeqCst) {
                if let Some(r) = call.try_take() {
                    self.stats.on_spin_resolved();
                    return r;
                }
                self.rt.yield_now();
                spent += 1;
            }
        }
        call.waiting.store(true, Ordering::SeqCst);
        loop {
            if let Some(r) = call.try_take() {
                if adaptive {
                    self.stats.on_park_resolved();
                }
                return r;
            }
            self.rt.park();
        }
    }

    /// Deadline-bounded variant of [`call_protocol`](Self::call_protocol):
    /// the same protocol, but the reply wait is bounded by `ticks` virtual
    /// microseconds. On expiry the caller claims its cell back
    /// (`CALL_WAITING → CALL_CANCELLED`), proactively removes it from the
    /// wait queue or an `Attached` slot if it is still reachable there,
    /// and returns [`AlpsError::Timeout`]; a cell the manager already owns
    /// — in the intake ring, `Accepted`, or `Started` — is reclaimed
    /// lazily by whichever holder touches it next (drain tombstone, losing
    /// `finish` CAS, shutdown sweep).
    ///
    /// Kept as a separate function rather than an `Option<deadline>`
    /// parameter so the no-deadline warm path carries zero extra loads or
    /// branches.
    pub(crate) fn call_protocol_deadline(
        self: &Arc<Self>,
        entry: usize,
        args: ValVec,
        external: bool,
        ticks: u64,
    ) -> Result<ValVec> {
        let def = &self.entries[entry];
        if external && def.local {
            return Err(AlpsError::LocalEntryCalled {
                object: self.name.clone(),
                entry: def.name.clone(),
            });
        }
        check_types_lazy(&def.params, &args, || {
            format!("call {}.{}", self.name, def.name)
        })?;
        if self.is_closed() {
            return Err(self.closed_err());
        }
        if self.is_poisoned() {
            self.stats.on_poison_reject();
            return Err(self.poison_reject());
        }
        self.stats.on_call();
        let t_call = self.rt.now();
        let deadline = t_call.saturating_add(ticks);

        if def.intercept.is_none() {
            // Inline fast path: once the body starts, it runs to
            // completion in this very process — the deadline bounds
            // *waiting*, never execution already underway.
            let claimed = {
                let mut es = self.estates[entry].st.lock();
                if self.is_closed() {
                    return Err(self.closed_err());
                }
                match es.slots.iter().position(|s| matches!(s, Slot::Free)) {
                    Some(i) => {
                        es.slots[i] = Slot::InlineBusy;
                        Some(i)
                    }
                    None => None,
                }
            };
            if let Some(i) = claimed {
                return self.run_inline(entry, i, args, t_call);
            }
            let call = self.acquire_cell(args, self.rt.current(), t_call);
            let dispatch = {
                let mut es = self.estates[entry].st.lock();
                if self.is_closed() {
                    return Err(self.closed_err());
                }
                self.attach_or_queue(&mut es, entry, Arc::clone(&call))
            };
            if let Some((i, params)) = dispatch {
                self.dispatch_body(entry, i, params);
            }
            let r = self.wait_for_reply_deadline(&call, entry, deadline, ticks);
            self.release_cell(call);
            return r;
        }

        // Intercepted: same ring submission as the no-deadline path.
        let call = self.acquire_cell(args, self.rt.current(), t_call);
        if self.rt.fault_point("intake_push") {
            // Injected lost submission; the deadline converts the hang
            // into a Timeout.
            let r = self.wait_for_reply_deadline(&call, entry, deadline, ticks);
            self.release_cell(call);
            return r;
        }
        // Commit point: publish into the lane/ring (see call_protocol).
        self.rt.sim_point(CommitPoint::IntakePush);
        if let Err(e) = self.submit_call(entry, &call) {
            self.release_cell(call);
            return Err(e);
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.is_closed() {
            self.sweep_intake();
        }
        let r = self.wait_for_reply_deadline(&call, entry, deadline, ticks);
        self.release_cell(call);
        r
    }

    /// Deadline-bounded reply wait. No spin/yield phase: a caller that
    /// opted into a deadline is latency-tolerant by definition, so it
    /// announces and parks with a timer straight away. On expiry it races
    /// the completer with a `cancel` CAS; losing the race means the result
    /// was published first and is taken normally.
    fn wait_for_reply_deadline(
        self: &Arc<Self>,
        call: &Arc<CallCell>,
        entry: usize,
        deadline: u64,
        budget: u64,
    ) -> Result<ValVec> {
        call.waiting.store(true, Ordering::SeqCst);
        loop {
            if let Some(r) = call.try_take() {
                return r;
            }
            let now = self.rt.now();
            if now >= deadline {
                // Commit point: the cancel CAS below races the
                // completer's `finish` CAS. A strategy preempting here
                // widens the window in which the manager can win.
                self.rt.sim_point(CommitPoint::FinishCas);
                if call.cancel() {
                    self.stats.on_timeout();
                    self.reap_cancelled(entry, call);
                    return Err(AlpsError::Timeout {
                        what: self.entries[entry].name.clone(),
                        ticks: budget,
                    });
                }
                // Lost the race: `finish` publishes the result before its
                // CAS, so a failed cancel means the result is visible now.
                return call
                    .try_take()
                    .expect("completer won the state CAS, result published");
            }
            self.rt.park_timeout(deadline - now);
        }
    }

    /// Best-effort immediate cleanup after a caller-side cancellation:
    /// pull the cell out of whatever this side can still reach — the wait
    /// queue or an `Attached` slot. Cells the manager already owns
    /// (`Accepted`, `Started`, `Ready`, `Awaited`) are left in place: the
    /// manager's eventual completion loses the `finish` CAS and tombstones
    /// them. Cells still in the intake ring are tombstoned by the next
    /// drain or sweep.
    fn reap_cancelled(self: &Arc<Self>, entry: usize, call: &Arc<CallCell>) {
        let sync = &self.estates[entry];
        let mut removed = false;
        let dispatch = {
            let mut es = sync.st.lock();
            if let Some(pos) = es.waitq.iter().position(|c| Arc::ptr_eq(c, call)) {
                es.waitq.remove(pos);
                sync.queued.fetch_sub(1, Ordering::SeqCst);
                removed = true;
                None
            } else if let Some(i) = es
                .slots
                .iter()
                .position(|s| matches!(s, Slot::Attached { call: c } if Arc::ptr_eq(c, call)))
            {
                sync.attached.fetch_sub(1, Ordering::SeqCst);
                removed = true;
                // Dropping the slot's clone here; free_slot_and_pull hands
                // the slot to the next queued call.
                self.free_slot_and_pull(&mut es, entry, i)
            } else {
                None
            }
        };
        if removed {
            if call.claim_tombstone() {
                self.stats.on_reap();
            }
            // `#P` shrank; a `when`-condition watching it may now hold.
            self.notifier.notify(&self.rt);
        }
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
    }

    /// Drain the intake ring: classify every published cell into its
    /// entry's slot array or wait queue. Called by the manager at the top
    /// of each select pass, so one wakeup amortizes over the whole batch.
    ///
    /// Classification is *silent* (no notifier bump): the manager is the
    /// only waiter on the object notifier and it evaluates its guards
    /// right after draining. Per-entry FIFO holds because ring pop order
    /// is ring push order and a cell is queued — never slot-attached —
    /// whenever earlier cells of its entry are still queued.
    /// Classify one popped intake item — from the shared ring or the
    /// fast lane, the protocol is identical — into its entry's slot
    /// array or wait queue. Runs under the `intake_drain` lock.
    fn drain_classify(&self, now: u64, eidx: u32, call: Arc<CallCell>) {
        let entry = eidx as usize;
        let sync = &self.estates[entry];
        // A cancelled cell is a tombstone, not a stale call: the
        // caller's deadline expired between its push and this drain.
        // Acknowledge, drop the ring accounting, and recycle — it must
        // never reach a slot or the wait queue.
        if call.is_cancelled() {
            sync.in_ring.fetch_sub(1, Ordering::SeqCst);
            if call.claim_tombstone() {
                self.stats.on_reap();
            }
            self.release_cell(call);
            return;
        }
        if self.rt.fault_point("drain") {
            // Injected lost drain: the cell vanishes undelivered. Its
            // caller recovers via deadline (or deadlocks, detectably).
            sync.in_ring.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let mut es = sync.st.lock();
        if self.is_closed() {
            // Entry-lock mutual exclusion with shutdown's sweep makes
            // either ordering safe: whoever holds the cell fails it.
            drop(es);
            sync.in_ring.fetch_sub(1, Ordering::SeqCst);
            self.complete(&call, Err(self.closed_err()));
            return;
        }
        call.t_attach.store(now, Ordering::Relaxed);
        self.stats.on_attach(now.saturating_sub(call.t_call));
        let free = if es.waitq.is_empty() {
            es.slots.iter().position(|s| matches!(s, Slot::Free))
        } else {
            // Earlier calls of this entry are queued; going to a slot
            // now would overtake them.
            None
        };
        match free {
            Some(i) => {
                es.slots[i] = Slot::Attached { call };
                sync.attached.fetch_add(1, Ordering::SeqCst);
            }
            None => {
                es.waitq.push_back(call);
                sync.queued.fetch_add(1, Ordering::SeqCst);
            }
        }
        // After the attach/queue increment so `#P` never transiently
        // under-counts this call.
        sync.in_ring.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn drain_intake(&self) {
        if !self.has_intake_work() {
            return;
        }
        // Commit point: work was observed but the drain lock is not yet
        // held — preempting here lets producers pile on (or cancel) and
        // lets a restart sweep win the lock first. Must stay *before*
        // the lock: a preemption while holding `intake_drain` could
        // OS-block a rival that holds the simulated CPU.
        self.rt.sim_point(CommitPoint::RingDrain);
        let _g = self.intake_drain.lock();
        let now = self.rt.now();
        let mut drained = 0u64;
        // Lane first, ring second — always. An owner that overflowed to
        // the ring demoted itself *before* its ring push, so emptying
        // the lane here keeps that caller's items in push order.
        while let Some((eidx, call)) = self.lane.pop() {
            drained += 1;
            self.lane_dry.store(0, Ordering::SeqCst);
            self.drain_classify(now, eidx, call);
        }
        let mut foreign_ring_pop = false;
        while let Some((eidx, call)) = self.intake.pop() {
            drained += 1;
            // Same-producer streak tracking drives lane promotion; any
            // ring traffic while the lane is active means a competing
            // producer (the owner itself never uses the ring while it
            // holds the lane, except after self-demoting).
            if self.lane_owner.is_active() {
                foreign_ring_pop = true;
            } else if self.entries[eidx as usize].fast_lane {
                let tag = call.caller.as_u64().wrapping_add(1);
                if self.lane_last_producer.load(Ordering::Relaxed) == tag {
                    let s = self.lane_streak.load(Ordering::Relaxed).saturating_add(1);
                    self.lane_streak.store(s, Ordering::Relaxed);
                } else {
                    self.lane_last_producer.store(tag, Ordering::Relaxed);
                    self.lane_streak.store(1, Ordering::Relaxed);
                }
            } else {
                self.lane_last_producer.store(0, Ordering::Relaxed);
                self.lane_streak.store(0, Ordering::Relaxed);
            }
            self.drain_classify(now, eidx, call);
        }
        // Lane control, still under the drain lock so promote/demote
        // have a single serialized site.
        let mut lane_switched = false;
        if foreign_ring_pop {
            // Competition detected: fall back to the one shared queue.
            // `Busy` (owner mid-push) just retries on the next pass —
            // the competitor keeps pushing, so another pass is coming.
            if matches!(self.lane_owner.try_release(), Release::Released(_)) {
                self.stats.on_lane_demote();
                lane_switched = true;
            }
            self.lane_last_producer.store(0, Ordering::Relaxed);
            self.lane_streak.store(0, Ordering::Relaxed);
        } else if !self.lane_owner.is_active()
            && !self.is_closed()
            && self.lane_streak.load(Ordering::Relaxed) >= self.lane_promote_streak
        {
            let tag = self.lane_last_producer.load(Ordering::Relaxed);
            if tag != 0 && self.lane_owner.promote(tag - 1) {
                self.stats.on_lane_promote();
                self.lane_streak.store(0, Ordering::Relaxed);
                self.lane_dry.store(0, Ordering::SeqCst);
                lane_switched = true;
            }
        }
        if drained > 0 {
            self.stats.on_drain(drained);
            // Ring space freed: wake producers parked on a full ring
            // (Block/Cooperative backpressure).
            self.space_notifier.notify(&self.rt);
            if let AdmissionPolicy::Cooperative { low, .. } = self.admission {
                if self.mgr_overloaded.load(Ordering::SeqCst) && self.intake.len() <= low {
                    self.mgr_overloaded.store(false, Ordering::SeqCst);
                }
            }
        }
        // A batch of ≥ 2 is proof of concurrent callers: promote the
        // manager to storm mode (yield-poll instead of park, see
        // `wait_for_work`) so the whole group is served on scheduler
        // rotation without futex traffic. A lone synchronous caller never
        // has two calls in flight and thus never triggers this.
        if drained >= 2 {
            self.mgr_poll.store(true, Ordering::SeqCst);
        }
        drop(_g);
        // Commit point, *after* releasing the drain lock: the lane just
        // changed hands and the old/new owner's next push races the
        // manager observing the switch.
        if lane_switched {
            self.rt.sim_point(CommitPoint::LaneSwitch);
        }
    }

    /// Fail every published cell still in the intake ring (shutdown path
    /// and producers that observed `closed` after their push).
    pub(crate) fn sweep_intake(&self) {
        let _g = self.intake_drain.lock();
        let mut popped = false;
        while let Some((eidx, call)) = self.lane.pop() {
            self.estates[eidx as usize]
                .in_ring
                .fetch_sub(1, Ordering::SeqCst);
            self.complete(&call, Err(self.closed_err()));
            popped = true;
        }
        while let Some((eidx, call)) = self.intake.pop() {
            self.estates[eidx as usize]
                .in_ring
                .fetch_sub(1, Ordering::SeqCst);
            self.complete(&call, Err(self.closed_err()));
            popped = true;
        }
        // The lane will never be drained again; best-effort release so
        // ownership state doesn't outlive the object's service life. A
        // `Busy` owner mid-push is fine: it observes `closed` after its
        // own fence and re-enters this sweep for its item.
        let _ = self.lane_owner.try_release();
        if popped {
            // Backpressured producers must not stay parked on a ring that
            // will never drain again.
            self.space_notifier.notify(&self.rt);
        }
    }

    /// Supervision entry point, called from the panic arm of
    /// [`exec_checked_body`](Self::exec_checked_body) with no locks held,
    /// in whichever process ran the panicking body (pool worker, inline
    /// caller, or the manager itself via `execute`).
    ///
    /// Under the restart lock: charge the restart budget (refusal ⇒
    /// permanent poison), consult the `"restart"` fault point, bump the
    /// generation, sweep in-flight calls per the [`OnRestart`] choice,
    /// re-run `state_init`, clear the poison, and wake everyone with a
    /// stake — the old-generation manager (whose next primitive fails with
    /// [`AlpsError::ObjectRestarting`], sending the supervisor loop back
    /// around), backpressured producers, and `when #P` guards.
    ///
    /// Cancellation of running bodies stays cooperative: a body in flight
    /// at restart time keeps running against the old state (its slot is
    /// abandoned and its outcome discarded). A `state_init` that must not
    /// race such stragglers should swap in fresh state atomically (e.g.
    /// replace the contents of an `Arc<Mutex<…>>`) rather than mutate in
    /// place.
    fn handle_body_panic(self: &Arc<Self>) {
        let Some(cfg) = &self.supervise else { return };
        // Commit point, before the restart lock: a restart is about to
        // sweep in-flight calls, racing callers publishing, cancelling,
        // and the manager finishing. No locks held yet.
        self.rt.sim_point(CommitPoint::RestartSweep);
        // Serialize concurrent panics: each performs (or is refused) one
        // restart, in panic order. The supervisor loop also takes this
        // lock as its re-entry barrier.
        let mut times = self.restart_times.lock();
        if self.is_closed() || self.perm_failed.load(Ordering::SeqCst) {
            return;
        }
        let now = self.rt.now();
        let allowed = match cfg.policy {
            RestartPolicy::Never => false,
            RestartPolicy::AlwaysFresh => true,
            RestartPolicy::RestartTransient {
                max_restarts,
                window_ticks,
            } => {
                times.retain(|t| now.saturating_sub(*t) < window_ticks);
                (times.len() as u32) < max_restarts
            }
        };
        // An injected `"restart"` Drop fails this attempt: the object
        // stays permanently poisoned, as if the rebuild itself died.
        if !allowed || self.rt.fault_point("restart") {
            self.perm_failed.store(true, Ordering::SeqCst);
            return;
        }
        times.push(now);
        // Bump the generation FIRST: every manager primitive re-checks it
        // under the entry lock, so no old-generation accept, start, or
        // finish can commit once the sweep below begins.
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.restart_sweep(cfg.on_restart);
        // Rebuild user state. A panicking initializer fails the restart
        // permanently (poison), not the process.
        if let Some(init) = &cfg.state_init {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(&**init)).is_err() {
                self.perm_failed.store(true, Ordering::SeqCst);
                return;
            }
        }
        self.stats.on_restart();
        self.poisoned.store(false, Ordering::SeqCst);
        drop(times);
        self.notifier.notify(&self.rt);
        self.space_notifier.notify(&self.rt);
    }

    /// The restart's in-flight sweep. Phase 1 empties the intake ring
    /// under the drain lock (FailInFlight only — under Requeue the ring
    /// holds exactly the calls no manager generation has seen, and the new
    /// generation's first drain classifies them in FIFO order). Phase 2
    /// walks each entry under its own lock — the drain lock is *not* held,
    /// matching `drain_intake`'s intake_drain → entry-lock order — and
    /// completes victims only after unlocking, mirroring `shutdown`.
    fn restart_sweep(self: &Arc<Self>, on: OnRestart) {
        let fail_unseen = matches!(on, OnRestart::FailInFlight);
        if fail_unseen {
            let _g = self.intake_drain.lock();
            while let Some((eidx, call)) = self.lane.pop() {
                self.estates[eidx as usize]
                    .in_ring
                    .fetch_sub(1, Ordering::SeqCst);
                if call.is_cancelled() {
                    if call.claim_tombstone() {
                        self.stats.on_reap();
                    }
                    self.release_cell(call);
                } else {
                    self.complete(&call, Err(self.restarting_err()));
                }
            }
            while let Some((eidx, call)) = self.intake.pop() {
                self.estates[eidx as usize]
                    .in_ring
                    .fetch_sub(1, Ordering::SeqCst);
                if call.is_cancelled() {
                    if call.claim_tombstone() {
                        self.stats.on_reap();
                    }
                    self.release_cell(call);
                } else {
                    self.complete(&call, Err(self.restarting_err()));
                }
            }
            // Demote across the restart: the post-restart world starts
            // from the plain MPSC route and re-earns the lane. A `Busy`
            // owner's straggler push linearizes after the restart and is
            // classified by the new generation's first drain.
            let _ = self.lane_owner.try_release();
        }
        for (entry, sync) in self.estates.iter().enumerate() {
            let mut victims: Vec<Arc<CallCell>> = Vec::new();
            let mut dispatches: Vec<(usize, ValVec)> = Vec::new();
            {
                let mut es = sync.st.lock();
                if fail_unseen {
                    let n = es.waitq.len();
                    victims.extend(es.waitq.drain(..));
                    if n > 0 {
                        sync.queued.fetch_sub(n, Ordering::SeqCst);
                    }
                }
                for s in &mut es.slots {
                    match std::mem::replace(s, Slot::Free) {
                        Slot::Free => {}
                        // An inline implicit body answers its own caller;
                        // an already-abandoned body is somebody else's
                        // cleanup. Both keep their slot.
                        keep @ (Slot::InlineBusy | Slot::Abandoned) => *s = keep,
                        Slot::Attached { call } => {
                            if fail_unseen {
                                sync.attached.fetch_sub(1, Ordering::SeqCst);
                                victims.push(call);
                            } else {
                                // Requeue: attached-but-unaccepted calls
                                // were never seen by the dead generation
                                // and survive in place.
                                *s = Slot::Attached { call };
                            }
                        }
                        // The dead generation's bookkeeping owned these —
                        // accepted, running, or holding a pre-restart
                        // result that must never be delivered.
                        Slot::Accepted { call } => victims.push(call),
                        Slot::Started { call } => {
                            // Cooperative: the body cannot be interrupted.
                            // It keeps the slot as Abandoned; `body_done`
                            // discards its outcome and frees it.
                            *s = Slot::Abandoned;
                            victims.push(call);
                        }
                        Slot::Ready { call, .. } => {
                            sync.ready.fetch_sub(1, Ordering::SeqCst);
                            victims.push(call);
                        }
                        Slot::Awaited { call, .. } => victims.push(call),
                    }
                }
                if !fail_unseen {
                    // Requeue: slots freed above (accepted/ready/awaited
                    // victims) immediately re-attach surviving queued
                    // calls, preserving per-entry FIFO.
                    for i in 0..es.slots.len() {
                        if !matches!(es.slots[i], Slot::Free) {
                            continue;
                        }
                        let Some(next) = es.waitq.pop_front() else {
                            break;
                        };
                        sync.queued.fetch_sub(1, Ordering::SeqCst);
                        if let Some(d) = self.attach_to_slot(&mut es, entry, i, next) {
                            dispatches.push(d);
                        }
                    }
                }
            }
            for call in victims {
                self.complete(&call, Err(self.restarting_err()));
            }
            for (i, params) in dispatches {
                self.dispatch_body(entry, i, params);
            }
        }
    }

    /// Inline implicit execution: the caller claimed `slot`
    /// (`Slot::InlineBusy`) and runs the body itself.
    fn run_inline(
        self: &Arc<Self>,
        entry: usize,
        slot: usize,
        args: ValVec,
        t_call: u64,
    ) -> Result<ValVec> {
        // The slot was free when we got here, so the attach wait is ~0;
        // reuse `t_call` as the start time instead of reading the clock
        // again.
        self.stats.on_attach(0);
        self.stats.on_implicit_start();
        let outcome = self.exec_checked_body(entry, slot, args);
        let done_at = self.rt.now();
        self.stats.on_service(done_at.saturating_sub(t_call));
        let dispatch = {
            let mut es = self.estates[entry].st.lock();
            match es.slots[slot] {
                Slot::InlineBusy => self.free_slot_and_pull(&mut es, entry, slot),
                // Shutdown swept the slot while the body ran; the call
                // fails like any other in-flight call at shutdown.
                _ => return Err(self.closed_err()),
            }
        };
        if let Some((i, params)) = dispatch {
            self.dispatch_body(entry, i, params);
        }
        match outcome {
            Ok(results) => {
                self.stats.on_complete(done_at.saturating_sub(t_call));
                Ok(results)
            }
            Err(msg) => {
                self.stats.on_body_failure();
                Err(AlpsError::BodyFailed {
                    entry: self.entries[entry].name.clone(),
                    message: msg,
                })
            }
        }
    }

    /// `#P`: attached-but-unaccepted plus queued calls, plus calls still
    /// in the intake ring (committed but not yet drained) — paper §2.5.1.
    /// Reads the per-entry atomic index — no lock.
    pub(crate) fn pending(&self, entry: usize) -> usize {
        let s = &self.estates[entry];
        s.attached.load(Ordering::SeqCst)
            + s.queued.load(Ordering::SeqCst)
            + s.in_ring.load(Ordering::SeqCst)
    }

    /// Shut the object down: fail all in-flight and queued calls, stop the
    /// pool, wake the manager (whose next primitive returns
    /// [`AlpsError::ObjectClosed`]).
    pub(crate) fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Fail undrained ring residents first. A producer whose publish
        // this sweep misses (still in its store buffer) sees `closed`
        // after its own SeqCst fence and sweeps its item itself — see
        // `call_protocol`. `in_ring` is decremented per popped item, never
        // zeroed, precisely because such in-flight producers still own
        // their increment.
        self.sweep_intake();
        let mut victims: Vec<Arc<CallCell>> = Vec::new();
        for sync in &self.estates {
            let mut es = sync.st.lock();
            victims.extend(es.waitq.drain(..));
            for s in &mut es.slots {
                match std::mem::replace(s, Slot::Free) {
                    // Abandoned: the caller was already answered by
                    // `cancel`; the still-running body's `body_done` finds
                    // the slot `Free` and treats it as swept.
                    Slot::Free | Slot::InlineBusy | Slot::Abandoned => {}
                    Slot::Attached { call }
                    | Slot::Accepted { call }
                    | Slot::Started { call }
                    | Slot::Ready { call, .. }
                    | Slot::Awaited { call, .. } => victims.push(call),
                }
            }
            sync.attached.store(0, Ordering::SeqCst);
            sync.queued.store(0, Ordering::SeqCst);
            sync.ready.store(0, Ordering::SeqCst);
        }
        for call in victims {
            self.complete(&call, Err(self.closed_err()));
        }
        self.pool.shutdown();
        self.notifier.notify(&self.rt);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Builder assembling an ALPS object from entry definitions, an optional
/// manager, and a pool mode; [`spawn`](ObjectBuilder::spawn) creates the
/// object and starts its manager process.
///
/// # Examples
///
/// A minimal managed object (monitor-style mutual exclusion via
/// `execute`, paper §1):
///
/// ```
/// use alps_core::{EntryDef, Guard, ObjectBuilder, Selected, Ty, vals};
/// use alps_runtime::SimRuntime;
///
/// let sim = SimRuntime::new();
/// let out = sim
///     .run(|rt| {
///         let counter = ObjectBuilder::new("Counter")
///             .entry(
///                 EntryDef::new("Incr")
///                     .params([Ty::Int])
///                     .results([Ty::Int])
///                     .intercepted()
///                     .body(|_ctx, args| {
///                         Ok(vec![alps_core::Value::Int(args[0].as_int()? + 1)])
///                     }),
///             )
///             .manager(|mgr| {
///                 loop {
///                     let acc = mgr.accept("Incr")?;
///                     mgr.execute(acc)?;
///                 }
///             })
///             .spawn(rt)
///             .unwrap();
///         counter.call("Incr", vals![41i64]).unwrap()[0].as_int().unwrap()
///     })
///     .unwrap();
/// assert_eq!(out, 42);
/// ```
pub struct ObjectBuilder {
    name: String,
    entries: Vec<EntryDef>,
    manager: Option<ManagerBody>,
    pool: PoolMode,
    manager_prio: Priority,
    poison_on_panic: bool,
    supervise: Option<RestartPolicy>,
    on_restart: OnRestart,
    state_init: Option<Box<dyn Fn() + Send + Sync + 'static>>,
    admission: AdmissionPolicy,
    intake_capacity: Option<usize>,
    affinity_hint: Option<usize>,
    lane_promote_after: Option<u32>,
}

impl fmt::Debug for ObjectBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectBuilder")
            .field("name", &self.name)
            .field("entries", &self.entries)
            .field("has_manager", &self.manager.is_some())
            .field("pool", &self.pool)
            .finish()
    }
}

impl ObjectBuilder {
    /// Start building an object with the given name.
    pub fn new(name: impl Into<String>) -> ObjectBuilder {
        ObjectBuilder {
            name: name.into(),
            entries: Vec::new(),
            manager: None,
            pool: PoolMode::default(),
            manager_prio: Priority::MANAGER,
            poison_on_panic: false,
            supervise: None,
            on_restart: OnRestart::default(),
            state_init: None,
            admission: AdmissionPolicy::default(),
            intake_capacity: None,
            affinity_hint: None,
            lane_promote_after: None,
        }
    }

    /// Prefer scheduling this object's manager and pool workers on
    /// worker `worker % K` of a work-stealing runtime
    /// ([`Runtime::thread_pool`](alps_runtime::Runtime::thread_pool)).
    /// A *soft* hint: the processes land in that worker's deque instead
    /// of the global injector — keeping a shard's manager and entry
    /// bodies on one worker's cache — but remain fully stealable.
    /// Ignored by the threaded and simulation executors.
    pub fn affinity_hint(mut self, worker: usize) -> Self {
        self.affinity_hint = Some(worker);
        self
    }

    /// Set the affinity hint only when the user did not choose one —
    /// `ShardedBuilder` spreads shard `i` onto worker `i % K` by
    /// default, but an explicit per-shard choice from the factory wins.
    pub(crate) fn default_affinity_hint(mut self, worker: usize) -> Self {
        self.affinity_hint.get_or_insert(worker);
        self
    }

    /// Override how many consecutive intake-ring pushes from the same
    /// producer promote that caller to the private SPSC fast lane
    /// (default [`tuning::LANE_PROMOTE_STREAK`]). Tests use small values
    /// to force promotion deterministically; `u32::MAX` disables the
    /// lane for the whole object. See also [`EntryDef::fast_lane`] for
    /// the per-entry switch.
    pub fn lane_promote_after(mut self, streak: u32) -> Self {
        self.lane_promote_after = Some(streak);
        self
    }

    /// Poison the object when an entry body panics: subsequent calls fail
    /// fast with [`AlpsError::ObjectPoisoned`] instead of running against
    /// possibly-corrupt state. Off by default — a panicking body already
    /// fails its own caller with [`AlpsError::BodyFailed`], and many
    /// objects (e.g. the failure-injection tests) tolerate body panics
    /// without invariant damage.
    pub fn poison_on_panic(mut self, yes: bool) -> Self {
        self.poison_on_panic = yes;
        self
    }

    /// Supervise the object: an entry-body panic triggers the restart
    /// machinery instead of (only) poisoning. Per `policy` the object is
    /// swept of in-flight calls (see [`on_restart`](Self::on_restart)),
    /// its user state is rebuilt by the [`state_init`](Self::state_init)
    /// closure, its manager process body is re-entered at a bumped
    /// generation, and the poison is cleared — the object serves calls
    /// again. A refused restart (budget exhausted,
    /// [`RestartPolicy::Never`]) leaves the object permanently poisoned,
    /// exactly like [`poison_on_panic`](Self::poison_on_panic).
    ///
    /// While a restart is possible, rejected new calls and swept in-flight
    /// calls fail with the *transient* [`AlpsError::ObjectRestarting`]
    /// (retry-worthy — see [`ObjectHandle::call_retry`]) rather than the
    /// permanent [`AlpsError::ObjectPoisoned`].
    pub fn supervise(mut self, policy: RestartPolicy) -> Self {
        self.supervise = Some(policy);
        self
    }

    /// What a supervised restart does with in-flight calls (default:
    /// [`OnRestart::FailInFlight`]). Only meaningful together with
    /// [`supervise`](Self::supervise).
    pub fn on_restart(mut self, choice: OnRestart) -> Self {
        self.on_restart = choice;
        self
    }

    /// Closure re-run on every supervised restart to rebuild the user
    /// state shared with the entry bodies (typically: reset the contents
    /// of the `Arc<Mutex<…>>` the bodies captured). Manager-closure-local
    /// state needs no initializer — the manager body is a `FnMut` that is
    /// simply re-entered from the top, rebuilding its own locals.
    pub fn state_init(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.state_init = Some(Box::new(f));
        self
    }

    /// What the call protocol does when the bounded intake ring is full
    /// (default: [`AdmissionPolicy::Block`] — backpressure).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Override the intake-ring capacity (rounded up to a power of two,
    /// minimum 2). The default is sized from the total slot count; shed
    /// policies usually want an explicit, small bound so overload is
    /// reached — and tested — deterministically.
    pub fn intake_capacity(mut self, n: usize) -> Self {
        self.intake_capacity = Some(n);
        self
    }

    /// Add an entry (or local) procedure.
    pub fn entry(mut self, def: EntryDef) -> Self {
        self.entries.push(def);
        self
    }

    /// Install the manager process body.
    pub fn manager<F>(mut self, f: F) -> Self
    where
        F: FnMut(&mut ManagerCtx) -> Result<()> + Send + 'static,
    {
        self.manager = Some(Box::new(f));
        self
    }

    /// Choose how entry executions map to processes (default:
    /// [`PoolMode::PerSlot`]).
    pub fn pool(mut self, mode: PoolMode) -> Self {
        self.pool = mode;
        self
    }

    /// Scheduling priority of the manager process (default
    /// [`Priority::MANAGER`], the paper's recommendation that the manager
    /// run "at a higher priority compared to the other processes in the
    /// object"). Experiment E8 lowers it to quantify the recommendation.
    pub fn manager_priority(mut self, prio: Priority) -> Self {
        self.manager_prio = prio;
        self
    }

    /// Validate the definition, create the object, start its pool workers
    /// and manager process.
    ///
    /// # Errors
    ///
    /// [`AlpsError::BadDefinition`] for inconsistent definitions:
    /// duplicate entry names, a missing body, an intercept prefix longer
    /// than the signature, hidden parameters/results on a non-intercepted
    /// entry, interception without a manager, or an empty shared pool.
    pub fn spawn(self, rt: &Runtime) -> Result<ObjectHandle> {
        let bad = |reason: String| AlpsError::BadDefinition { reason };
        let mut by_name = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            if by_name.insert(e.name.clone(), i).is_some() {
                return Err(bad(format!("duplicate entry `{}`", e.name)));
            }
            if e.body.is_none() {
                return Err(bad(format!("entry `{}` has no body", e.name)));
            }
            if let Some(ic) = e.intercept {
                if ic.params > e.params.len() {
                    return Err(bad(format!(
                        "entry `{}` intercepts {} parameters but declares {}",
                        e.name,
                        ic.params,
                        e.params.len()
                    )));
                }
                if ic.results > e.results.len() {
                    return Err(bad(format!(
                        "entry `{}` intercepts {} results but declares {}",
                        e.name,
                        ic.results,
                        e.results.len()
                    )));
                }
                if self.manager.is_none() {
                    return Err(bad(format!(
                        "entry `{}` is intercepted but the object has no manager",
                        e.name
                    )));
                }
            } else if !e.hidden_params.is_empty() || !e.hidden_results.is_empty() {
                return Err(bad(format!(
                    "entry `{}` declares hidden parameters/results but is not intercepted \
                     (only the manager can supply or receive them)",
                    e.name
                )));
            }
        }
        if let PoolMode::Shared(0) = self.pool {
            return Err(bad("shared pool must have at least one process".into()));
        }
        if let AdmissionPolicy::Cooperative { high, low } = self.admission {
            if high == 0 || low > high {
                return Err(bad(format!(
                    "cooperative admission watermarks must satisfy 0 < low ≤ high \
                     (got high={high}, low={low})"
                )));
            }
        }
        let mut slot_base = Vec::with_capacity(self.entries.len());
        let mut total = 0usize;
        for e in &self.entries {
            slot_base.push(total);
            total += e.array;
        }
        let estates: Vec<EntrySync> = self
            .entries
            .iter()
            .map(|e| EntrySync::new(e.array))
            .collect();
        let full_results: Vec<Vec<Ty>> = self.entries.iter().map(|e| e.full_results()).collect();
        let pool = Pool::new(
            rt.clone(),
            self.name.clone(),
            self.pool,
            total,
            self.affinity_hint,
        );
        let supervise = self.supervise.map(|policy| SuperviseCfg {
            policy,
            on_restart: self.on_restart,
            state_init: self.state_init,
        });
        let inner = Arc::new(ObjectInner {
            name: self.name.clone(),
            rt: rt.clone(),
            uid: OBJECT_UID.fetch_add(1, Ordering::Relaxed),
            entries: self.entries,
            by_name,
            slot_base,
            estates,
            notifier: Notifier::new(),
            stats: ObjectStats::new(),
            closed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            poison_on_panic: self.poison_on_panic,
            pool,
            manager_error: Mutex::new(None),
            cell_pool: Mutex::new(Vec::new()),
            cell_cap: (total * 2).clamp(8, 256),
            full_results,
            // Sized so a storm of callers (far more than slots) rarely
            // hits the full-ring admission path, yet small enough to stay
            // cache-resident; shed policies usually override the bound.
            intake: IntakeRing::with_capacity(
                self.intake_capacity
                    .map(|n| n.next_power_of_two().max(2))
                    .unwrap_or_else(|| (total * 8).next_power_of_two().clamp(64, 1024)),
            ),
            intake_drain: Mutex::new(()),
            lane: SpscLane::with_capacity(tuning::LANE_CAP),
            lane_owner: LaneOwner::new(),
            lane_last_producer: AtomicU64::new(0),
            lane_streak: AtomicU32::new(0),
            lane_dry: AtomicU32::new(0),
            lane_promote_streak: self
                .lane_promote_after
                .unwrap_or(tuning::LANE_PROMOTE_STREAK),
            mgr_active: AtomicBool::new(true),
            mgr_poll: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            supervise,
            restart_times: Mutex::new(Vec::new()),
            perm_failed: AtomicBool::new(false),
            admission: self.admission,
            mgr_overloaded: AtomicBool::new(false),
            space_notifier: Notifier::new(),
        });
        if let Some(mut body) = self.manager {
            let mgr_inner = Arc::clone(&inner);
            let supervised = mgr_inner.supervise.is_some();
            // The supervisor loop: the body is a `FnMut`, so a supervised
            // restart simply re-enters it from the top with a fresh
            // generation-tagged context — its closure-local state (counts,
            // free lists, …) rebuilds naturally.
            let mut opts = Spawn::new(format!("{}:manager", self.name))
                .prio(self.manager_prio)
                .daemon(true);
            if let Some(a) = self.affinity_hint {
                opts = opts.affinity(a);
            }
            rt.spawn_with(opts, move || loop {
                let mut ctx = ManagerCtx::new(Arc::clone(&mgr_inner));
                match body(&mut ctx) {
                    Ok(()) | Err(AlpsError::ObjectClosed { .. }) | Err(AlpsError::Runtime(_)) => {
                        break
                    }
                    Err(AlpsError::ObjectRestarting { .. }) if supervised => {
                        // A restart invalidated this generation. Wait
                        // for the in-flight sweep and state rebuild to
                        // complete (the restart holds this lock
                        // throughout) before re-entering, so the new
                        // generation never observes a half-swept
                        // object — that barrier is what makes "zero
                        // stale pre-restart replies" hold.
                        drop(mgr_inner.restart_times.lock());
                        // A restart whose rebuild failed leaves the
                        // object permanently poisoned: nothing will
                        // ever be admitted again, so don't re-enter.
                        if mgr_inner.perm_failed.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(e) => {
                        *mgr_inner.manager_error.lock() = Some(e);
                        mgr_inner.shutdown();
                        break;
                    }
                }
            });
        }
        Ok(ObjectHandle {
            core: Arc::new(HandleCore { inner }),
        })
    }
}

struct HandleCore {
    inner: Arc<ObjectInner>,
}

impl Drop for HandleCore {
    fn drop(&mut self) {
        self.inner.shutdown();
    }
}

/// Handle to a live ALPS object. Cloning shares the handle; the object is
/// shut down when the last clone drops (or explicitly via
/// [`shutdown`](ObjectHandle::shutdown)).
#[derive(Clone)]
pub struct ObjectHandle {
    core: Arc<HandleCore>,
}

impl fmt::Debug for ObjectHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.core.inner.fmt(f)
    }
}

impl ObjectHandle {
    /// The object's name.
    pub fn name(&self) -> &str {
        &self.core.inner.name
    }

    /// Intern an entry name, resolving it once to a copyable [`EntryId`]
    /// for use with [`call_id`](Self::call_id). Resolve ids right after
    /// [`ObjectBuilder::spawn`] and reuse them for every call.
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] for a bad name.
    pub fn entry_id(&self, entry: &str) -> Result<EntryId> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        Ok(EntryId {
            obj: inner.uid,
            idx: idx as u32,
        })
    }

    /// Names of the object's externally callable entries (locals are
    /// omitted — they would fail with [`AlpsError::LocalEntryCalled`]).
    /// This is the table a network server exports during the wire
    /// handshake so remote callers can intern [`EntryId`]s by name.
    pub fn entry_names(&self) -> Vec<String> {
        self.core
            .inner
            .entries
            .iter()
            .filter(|e| !e.local)
            .map(|e| e.name.clone())
            .collect()
    }

    /// Call an entry procedure and block until it finishes (ALPS
    /// `X.P(params, results)`, paper §2.2). The reply carries the public
    /// results.
    ///
    /// This is the resolving wrapper around the fast path: it interns the
    /// entry name ([`entry_id`](Self::entry_id)) and delegates to
    /// [`call_id`](Self::call_id) — one protocol implementation, not two.
    /// Hot callers should intern once themselves and call `call_id`
    /// directly to skip the per-call hash lookup.
    ///
    /// # Errors
    ///
    /// * [`AlpsError::UnknownEntry`] / [`AlpsError::LocalEntryCalled`] for
    ///   bad names;
    /// * arity/type mismatches against the public signature;
    /// * [`AlpsError::ObjectClosed`] if the object shuts down first;
    /// * [`AlpsError::BodyFailed`] if the entry body fails.
    pub fn call(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id(id, args).map(Vec::from)
    }

    /// The allocation-light fast path: call an entry through an interned
    /// [`EntryId`]. Semantically identical to [`call`](Self::call) — same
    /// protocol, same errors — minus the per-call name resolution, and
    /// with inline argument/result tuples ([`ValVec`]) so a steady-state
    /// call of arity ≤ 4 performs no heap allocation.
    ///
    /// ```no_run
    /// # use alps_core::{argv, ObjectBuilder, EntryDef, Ty};
    /// # use alps_runtime::Runtime;
    /// # let rt = Runtime::threaded();
    /// # let obj = ObjectBuilder::new("X")
    /// #     .entry(EntryDef::new("P").params([Ty::Int]).body(|_, _| Ok(vec![])))
    /// #     .spawn(&rt).unwrap();
    /// let p = obj.entry_id("P")?;
    /// for i in 0..1000i64 {
    ///     obj.call_id(p, argv![i])?;
    /// }
    /// # Ok::<(), alps_core::AlpsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`AlpsError::ForeignEntryId`] if the
    /// id was minted by a different object.
    pub fn call_id(&self, id: EntryId, args: impl Into<ValVec>) -> Result<ValVec> {
        let inner = &self.core.inner;
        if id.obj != inner.uid {
            return Err(AlpsError::ForeignEntryId {
                object: inner.name.clone(),
            });
        }
        inner.call_protocol(id.idx as usize, args.into(), true)
    }

    /// Like [`call`](Self::call), but give up after `ticks` virtual
    /// microseconds of waiting: the call is cancelled and
    /// [`AlpsError::Timeout`] returned. Cancellation is cooperative — a
    /// body that already *started* runs to completion, but its result is
    /// discarded (tombstoned) instead of delivered. A reply that lands in
    /// the same instant the deadline expires is delivered normally: the
    /// caller and the completer race on one atomic state transition, so a
    /// call is answered exactly once, by exactly one side.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`AlpsError::Timeout`] on expiry.
    pub fn call_deadline(&self, entry: &str, args: Vec<Value>, ticks: u64) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id_deadline(id, args, ticks).map(Vec::from)
    }

    /// Deadline-bounded variant of [`call_id`](Self::call_id); see
    /// [`call_deadline`](Self::call_deadline) for the timeout semantics.
    ///
    /// # Errors
    ///
    /// As [`call_id`](Self::call_id), plus [`AlpsError::Timeout`] on
    /// expiry.
    pub fn call_id_deadline(
        &self,
        id: EntryId,
        args: impl Into<ValVec>,
        ticks: u64,
    ) -> Result<ValVec> {
        let inner = &self.core.inner;
        if id.obj != inner.uid {
            return Err(AlpsError::ForeignEntryId {
                object: inner.name.clone(),
            });
        }
        inner.call_protocol_deadline(id.idx as usize, args.into(), true, ticks)
    }

    /// Like [`call_deadline`](Self::call_deadline), but retry *transient*
    /// failures per `policy`: [`AlpsError::Overloaded`] (the intake shed
    /// the call before enqueueing it), [`AlpsError::ObjectRestarting`] (a
    /// supervised restart swept or refused it), and [`AlpsError::Timeout`].
    /// Anything actually *delivered* — results, [`AlpsError::BodyFailed`],
    /// [`AlpsError::Cancelled`] — is never retried: the body may have run,
    /// and retrying would double-apply its effects.
    ///
    /// The policy's `budget_ticks` bounds the whole affair — attempts plus
    /// backoff sleeps; each attempt's deadline is the remaining budget
    /// split evenly over the remaining attempts. With
    /// [`Backoff::ExpJitter`], delays are drawn from the runtime's
    /// deterministic random stream
    /// ([`Runtime::rand_u64`](alps_runtime::Runtime::rand_u64)), so a
    /// seeded simulation replays the "random" backoff bit-for-bit.
    ///
    /// # Errors
    ///
    /// As [`call_deadline`](Self::call_deadline); when every attempt fails
    /// transiently, the *last* transient error is returned.
    pub fn call_retry(
        &self,
        entry: &str,
        args: Vec<Value>,
        policy: RetryPolicy,
    ) -> Result<Vec<Value>> {
        let id = self.entry_id(entry)?;
        self.call_id_retry(id, args, policy).map(Vec::from)
    }

    /// [`call_retry`](Self::call_retry) through an interned [`EntryId`]
    /// (see [`call_id`](Self::call_id)).
    ///
    /// # Errors
    ///
    /// As [`call_retry`](Self::call_retry), plus
    /// [`AlpsError::ForeignEntryId`].
    pub fn call_id_retry(
        &self,
        id: EntryId,
        args: impl Into<ValVec>,
        policy: RetryPolicy,
    ) -> Result<ValVec> {
        let inner = &self.core.inner;
        if id.obj != inner.uid {
            return Err(AlpsError::ForeignEntryId {
                object: inner.name.clone(),
            });
        }
        let args: ValVec = args.into();
        let attempts = policy.max_attempts.max(1);
        let deadline = inner.rt.now().saturating_add(policy.budget_ticks.max(1));
        let mut last = None;
        for k in 0..attempts {
            let remaining = deadline.saturating_sub(inner.rt.now());
            if remaining == 0 {
                break;
            }
            // Split the remaining budget evenly over the remaining
            // attempts so one slow attempt cannot starve the rest.
            let per = (remaining / u64::from(attempts - k)).max(1);
            // Epoch read BEFORE the attempt: if the attempt fails with
            // ObjectRestarting and the restart completes before we
            // register as a waiter below, the epoch has already moved and
            // the wait returns immediately — no lost wakeup.
            let seen = inner.notifier.epoch();
            match inner.call_protocol_deadline(id.idx as usize, args.clone(), true, per) {
                Ok(r) => return Ok(r),
                // The transient taxonomy is owned by `AlpsError::is_retryable`
                // so the remote proxy's retry loop and this one can never
                // drift apart.
                Err(e) if e.is_retryable() => {
                    let restarting = matches!(e, AlpsError::ObjectRestarting { .. });
                    last = Some(e);
                    if k + 1 == attempts {
                        break;
                    }
                    inner.stats.on_retry();
                    let delay = match policy.backoff {
                        Backoff::None => 0,
                        Backoff::Fixed(t) => t,
                        Backoff::ExpJitter { base, cap } => {
                            let d = base.checked_shl(k).unwrap_or(u64::MAX).min(cap);
                            // Uniform in [d/2, d].
                            let lo = d / 2;
                            lo + if d > lo {
                                inner.rt.rand_u64() % (d - lo + 1)
                            } else {
                                0
                            }
                        }
                    };
                    let sleep = delay.min(deadline.saturating_sub(inner.rt.now()));
                    if sleep > 0 {
                        inner.rt.sleep(sleep);
                    } else if restarting {
                        // A refused call returns without a scheduling
                        // point, so a zero-backoff loop would burn every
                        // attempt while the restart sweep is parked
                        // mid-window (the schedule explorer's
                        // PreemptionBounded strategy found exactly this).
                        // Wait for the restart's completion notify
                        // instead, bounded by this attempt's budget
                        // slice. Refused callers never bump the notifier,
                        // so the wait is not woken spuriously by rivals.
                        inner.notifier.wait_past_deadline(
                            &inner.rt,
                            seen,
                            inner.rt.now().saturating_add(per),
                        );
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(AlpsError::Timeout {
            what: inner.entries[id.idx as usize].name.clone(),
            ticks: policy.budget_ticks,
        }))
    }

    /// The object's restart generation: 0 at spawn, incremented by every
    /// supervised restart ([`ObjectBuilder::supervise`]).
    pub fn generation(&self) -> u64 {
        self.core.inner.generation.load(Ordering::SeqCst)
    }

    /// Call a procedure *as if from inside the object*: local procedures
    /// are callable and, when intercepted, go through the full
    /// attach/accept/start/finish protocol. Intended for language
    /// runtimes interpreting procedure bodies (the `alps-lang`
    /// interpreter); ordinary clients should use [`call`](Self::call).
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), except local procedures are permitted.
    pub fn call_from_inside(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        inner.call_protocol(idx, args.into(), false).map(Vec::from)
    }

    /// [`call_from_inside`](Self::call_from_inside) through an interned
    /// [`EntryId`] — the compiled-program path for intercepted sibling
    /// calls, with zero per-call name resolution and inline tuples.
    ///
    /// # Errors
    ///
    /// As [`call_id`](Self::call_id), except local procedures are
    /// permitted.
    pub fn call_from_inside_id(&self, id: EntryId, args: impl Into<ValVec>) -> Result<ValVec> {
        let inner = &self.core.inner;
        if id.obj != inner.uid {
            return Err(AlpsError::ForeignEntryId {
                object: inner.name.clone(),
            });
        }
        inner.call_protocol(id.idx as usize, args.into(), false)
    }

    /// `#P` for an entry: calls attached-but-unaccepted plus queued
    /// (paper §2.5.1; Ada `COUNT` / SR `?` analogue). Lock-free.
    ///
    /// # Errors
    ///
    /// [`AlpsError::UnknownEntry`] for bad names.
    pub fn pending(&self, entry: &str) -> Result<usize> {
        let inner = &self.core.inner;
        let idx = inner.entry_idx(entry)?;
        Ok(inner.pending(idx))
    }

    /// Instrumentation counters for this object.
    pub fn stats(&self) -> ObjectStats {
        self.core.inner.stats.clone()
    }

    /// How many runtime processes the object's pool created (experiment
    /// E7's cost metric).
    pub fn pool_procs_spawned(&self) -> u64 {
        self.core.inner.pool.procs_spawned()
    }

    /// The pool mode the object runs with.
    pub fn pool_mode(&self) -> PoolMode {
        self.core.inner.pool.mode()
    }

    /// Shut the object down now: in-flight and future calls fail with
    /// [`AlpsError::ObjectClosed`]; the manager and pool workers exit.
    pub fn shutdown(&self) {
        self.core.inner.shutdown();
    }

    /// Whether the object has been shut down.
    pub fn is_closed(&self) -> bool {
        self.core.inner.is_closed()
    }

    /// Whether an entry-body panic poisoned the object (only possible
    /// with [`ObjectBuilder::poison_on_panic`]).
    pub fn is_poisoned(&self) -> bool {
        self.core.inner.is_poisoned()
    }

    /// If the manager exited with an error (other than the normal
    /// shutdown path), that error.
    pub fn manager_error(&self) -> Option<AlpsError> {
        self.core.inner.manager_error.lock().clone()
    }

    /// Number of body executions the pool has run.
    pub fn pool_jobs_executed(&self) -> u64 {
        self.core.inner.pool.jobs_executed()
    }
}

use crate::value::Value;
