//! Frame transports. A [`Link`] moves whole frames (header + body, as
//! produced by [`encode_frame`](crate::wire::encode_frame)) between two
//! endpoints:
//!
//! * [`TcpLink`] — loopback or real TCP, for the 2-process case.
//! * [`UnixLink`] — Unix-domain sockets, same framing (unix only).
//! * [`MemLink`] — a pair of runtime [`Chan`]s, so the *entire* client ↔
//!   server protocol (handshake, calls, reconnects) runs inside one
//!   deterministic simulation.
//! * [`FaultyLink`] — wraps any of the above and applies a seeded
//!   [`NetFault`] at the send and receive points.
//!
//! A link is dumb on purpose: it neither parses nor retries. Framing
//! errors, checksum failures, and disconnects all surface to the
//! connection layer, which owns the supervision policy.

use std::io;
use std::sync::Arc;

use alps_runtime::{Chan, Runtime};
use parking_lot::Mutex;

use crate::fault::{NetFault, RecvPlan, SendPlan};
use crate::wire::{HEADER_LEN, MAX_FRAME};

/// A bidirectional whole-frame transport.
///
/// `recv` blocks until a frame, EOF, or transport error; `shutdown` must
/// unblock any blocked `recv` (that is how connection supervision tears a
/// link down from outside).
pub trait Link: Send + Sync {
    /// Send one encoded frame.
    ///
    /// # Errors
    ///
    /// Any transport-level failure; the connection layer treats every
    /// send error as link death.
    fn send(&self, frame: &[u8]) -> io::Result<()>;

    /// Receive one whole frame (header + body).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] on orderly close; anything else
    /// on transport failure. Both mean the link is dead.
    fn recv(&self) -> io::Result<Vec<u8>>;

    /// Tear the link down, unblocking any blocked [`recv`](Link::recv).
    fn shutdown(&self);

    /// Human-readable peer description for error messages.
    fn peer(&self) -> String;
}

fn eof() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "link closed")
}

// ------------------------------------------------------------------ tcp

/// A [`Link`] over a TCP stream. Reader and writer sides are guarded by
/// separate locks so a blocked `recv` never starves `send`.
pub struct TcpLink {
    reader: Mutex<std::net::TcpStream>,
    writer: Mutex<std::net::TcpStream>,
    peer: String,
}

impl TcpLink {
    /// Wrap a connected stream.
    ///
    /// # Errors
    ///
    /// When the stream cannot be cloned into reader/writer halves.
    pub fn new(stream: std::net::TcpStream) -> io::Result<TcpLink> {
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".into());
        let writer = stream.try_clone()?;
        Ok(TcpLink {
            reader: Mutex::new(stream),
            writer: Mutex::new(writer),
            peer,
        })
    }
}

fn read_exact_frame(r: &mut impl io::Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME {
        // A corrupted length prefix has desynchronized the byte stream;
        // there is no way to find the next frame boundary. Kill the link.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds cap"),
        ));
    }
    let mut frame = vec![0u8; HEADER_LEN + len];
    frame[..HEADER_LEN].copy_from_slice(&header);
    r.read_exact(&mut frame[HEADER_LEN..])?;
    Ok(frame)
}

impl Link for TcpLink {
    fn send(&self, frame: &[u8]) -> io::Result<()> {
        use io::Write;
        let mut w = self.writer.lock();
        w.write_all(frame)?;
        w.flush()
    }

    fn recv(&self) -> io::Result<Vec<u8>> {
        read_exact_frame(&mut *self.reader.lock())
    }

    fn shutdown(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// ----------------------------------------------------------------- unix

/// A [`Link`] over a Unix-domain socket.
#[cfg(unix)]
pub struct UnixLink {
    reader: Mutex<std::os::unix::net::UnixStream>,
    writer: Mutex<std::os::unix::net::UnixStream>,
    peer: String,
}

#[cfg(unix)]
impl UnixLink {
    /// Wrap a connected stream.
    ///
    /// # Errors
    ///
    /// When the stream cannot be cloned into reader/writer halves.
    pub fn new(stream: std::os::unix::net::UnixStream) -> io::Result<UnixLink> {
        let peer = stream
            .peer_addr()
            .ok()
            .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
            .unwrap_or_else(|| "unix:?".into());
        let writer = stream.try_clone()?;
        Ok(UnixLink {
            reader: Mutex::new(stream),
            writer: Mutex::new(writer),
            peer,
        })
    }
}

#[cfg(unix)]
impl Link for UnixLink {
    fn send(&self, frame: &[u8]) -> io::Result<()> {
        use io::Write;
        let mut w = self.writer.lock();
        w.write_all(frame)?;
        w.flush()
    }

    fn recv(&self) -> io::Result<Vec<u8>> {
        read_exact_frame(&mut *self.reader.lock())
    }

    fn shutdown(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// ------------------------------------------------------------------ mem

/// An in-memory [`Link`] over two runtime [`Chan`]s. Because `Chan`
/// works identically on both executors, a `MemLink` connection under the
/// simulation runtime makes the full distributed protocol — including
/// reconnects and transport faults — deterministic and sweepable.
pub struct MemLink {
    rt: Runtime,
    tx: Chan<Vec<u8>>,
    rx: Chan<Vec<u8>>,
    peer: String,
}

impl MemLink {
    /// A connected pair of in-memory links (client end, server end).
    pub fn pair(rt: &Runtime, name: &str) -> (Arc<MemLink>, Arc<MemLink>) {
        let a2b: Chan<Vec<u8>> = Chan::unbounded(format!("{name}.c2s"));
        let b2a: Chan<Vec<u8>> = Chan::unbounded(format!("{name}.s2c"));
        let client = Arc::new(MemLink {
            rt: rt.clone(),
            tx: a2b.clone(),
            rx: b2a.clone(),
            peer: format!("mem:{name}/server"),
        });
        let server = Arc::new(MemLink {
            rt: rt.clone(),
            tx: b2a,
            rx: a2b,
            peer: format!("mem:{name}/client"),
        });
        (client, server)
    }
}

impl Link for MemLink {
    fn send(&self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(&self.rt, frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "mem link closed"))
    }

    fn recv(&self) -> io::Result<Vec<u8>> {
        self.rx.recv(&self.rt).map_err(|_| eof())
    }

    fn shutdown(&self) {
        // Closing both directions unblocks the peer's recv too.
        self.tx.close(&self.rt);
        self.rx.close(&self.rt);
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// ---------------------------------------------------------------- faulty

/// A [`Link`] decorator that applies a seeded [`NetFault`] plan at the
/// send and receive points: drops, delays (via the runtime clock, so
/// they are virtual under the sim), duplicates, single-byte corruption,
/// and forced disconnects.
pub struct FaultyLink {
    inner: Arc<dyn Link>,
    fault: Arc<NetFault>,
    rt: Runtime,
}

impl FaultyLink {
    /// Wrap `inner` with the given fault state.
    pub fn new(rt: &Runtime, inner: Arc<dyn Link>, fault: Arc<NetFault>) -> FaultyLink {
        FaultyLink {
            inner,
            fault,
            rt: rt.clone(),
        }
    }
}

impl Link for FaultyLink {
    fn send(&self, frame: &[u8]) -> io::Result<()> {
        match self.fault.on_send() {
            SendPlan::Drop => Ok(()), // vanished in flight; sender can't tell
            SendPlan::Disconnect => {
                self.inner.shutdown();
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault injection: forced disconnect",
                ))
            }
            SendPlan::Deliver {
                delay_ticks,
                dup,
                corrupt,
            } => {
                self.rt.sleep(delay_ticks);
                let bytes: Vec<u8>;
                let payload: &[u8] = if let Some((offset_seed, mask)) = corrupt {
                    let mut damaged = frame.to_vec();
                    if damaged.len() > HEADER_LEN {
                        // Damage checksummed bytes only (crc or body):
                        // corrupting the length prefix desyncs stream
                        // framing, which is the disconnect fault, not the
                        // corruption fault.
                        let span = damaged.len() - 4;
                        let off = 4 + (offset_seed as usize) % span;
                        damaged[off] ^= mask;
                    }
                    bytes = damaged;
                    &bytes
                } else {
                    frame
                };
                self.inner.send(payload)?;
                if dup {
                    self.inner.send(payload)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&self) -> io::Result<Vec<u8>> {
        loop {
            let frame = self.inner.recv()?;
            match self.fault.on_recv() {
                RecvPlan::Drop => continue,
                RecvPlan::Deliver { delay_ticks } => {
                    self.rt.sleep(delay_ticks);
                    return Ok(frame);
                }
            }
        }
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::NetFaultPlan;
    use crate::wire::{decode_frame, encode_frame, Frame, FrameError, PROTO_VERSION};

    fn hello() -> Vec<u8> {
        encode_frame(&Frame::Hello {
            version: PROTO_VERSION,
            session: 9,
            object: "X".into(),
        })
        .unwrap()
    }

    #[test]
    fn mem_link_round_trips_frames() {
        let rt = Runtime::threaded();
        let (client, server) = MemLink::pair(&rt, "t");
        client.send(&hello()).unwrap();
        let got = server.recv().unwrap();
        assert_eq!(got, hello());
        server.shutdown();
        assert!(client.recv().is_err());
        assert!(client.send(&hello()).is_err());
    }

    #[test]
    fn faulty_link_corruption_is_detectable_not_desyncing() {
        let rt = Runtime::threaded();
        let (client, server) = MemLink::pair(&rt, "t");
        let mut plan = NetFaultPlan::seeded(3);
        plan.corrupt_rate = 1.0;
        let faulty = FaultyLink::new(&rt, client.clone(), Arc::new(NetFault::new(plan)));
        for _ in 0..50 {
            faulty.send(&hello()).unwrap();
            let got = server.recv().unwrap();
            // Every frame was corrupted past the length prefix, so it
            // still frames correctly and decodes to a clean checksum (or
            // header-crc) error — never a panic, never a wrong frame.
            assert_eq!(got.len(), hello().len());
            match decode_frame(&got) {
                Err(FrameError::Checksum { .. }) => {}
                other => panic!("corrupted frame decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn faulty_link_disconnect_every_kills_the_pipe() {
        let rt = Runtime::threaded();
        let (client, server) = MemLink::pair(&rt, "t");
        let mut plan = NetFaultPlan::seeded(3);
        plan.disconnect_every = 3;
        let faulty = FaultyLink::new(&rt, client.clone(), Arc::new(NetFault::new(plan)));
        faulty.send(&hello()).unwrap();
        faulty.send(&hello()).unwrap();
        let err = faulty.send(&hello()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The inner link was shut down, so the server sees EOF after
        // draining what was delivered.
        server.recv().unwrap();
        server.recv().unwrap();
        assert!(server.recv().is_err());
    }

    #[test]
    fn tcp_link_round_trips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let link = TcpLink::new(s).unwrap();
            let got = link.recv().unwrap();
            link.send(&got).unwrap();
        });
        let link = TcpLink::new(std::net::TcpStream::connect(addr).unwrap()).unwrap();
        link.send(&hello()).unwrap();
        assert_eq!(link.recv().unwrap(), hello());
        t.join().unwrap();
    }
}
