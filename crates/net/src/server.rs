//! The server side of distributed ALPS objects: expose a runtime's
//! [`ObjectHandle`]s over any [`Link`] transport.
//!
//! # At-most-once execution
//!
//! The server's partial-failure contract is a per-session
//! duplicate-suppression cache. Every call arrives with a session-scoped
//! correlation id; the server tracks each id through
//! `InFlight → Done(reply)` and
//!
//! * replays the cached reply when a **resolved** id is redelivered
//!   (the client retried because the reply was lost, not the call), and
//! * silently ignores an **in-flight** id (the client's retry raced the
//!   original, e.g. a duplicated frame).
//!
//! An entry body therefore runs at most once per call id no matter how
//! often the transport redelivers the call — the property the 256-seed
//! transport-fault sweep pins.
//!
//! The cache is pruned by the client's `ack_below` watermark (every id
//! below it is resolved client-side), so a long-lived session does not
//! grow the cache without bound. Only `Done` entries are pruned; an
//! `InFlight` marker must survive until its dispatch resolves, or a
//! duplicate could re-execute the body.
//!
//! # Error propagation
//!
//! A dispatch that fails maps its [`AlpsError`] onto the wire taxonomy
//! ([`err_to_wire`](crate::wire::err_to_wire)) — `Overloaded`,
//! `ObjectRestarting`, `ObjectPoisoned` and the rest arrive at the
//! remote caller as the same variant they would see in-process.
//! *Retryable* failures are **not** cached: `Overloaded` and
//! `ObjectRestarting` mean the body never ran, so the client's retry of
//! the same call id must re-execute, not replay the refusal.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{AlpsError, EntryId, ObjectHandle, ValVec};
use alps_runtime::metrics::Counter;
use alps_runtime::{Chan, Runtime, Spawn};
use parking_lot::Mutex;

use crate::link::{Link, MemLink, TcpLink};
use crate::wire::{
    decode_frame, encode_frame, err_to_wire, Frame, WireErr, NO_BUDGET, PROTO_VERSION,
};

/// Where a tracked call id stands.
enum CallState {
    /// Dispatched; the entry body may be running. A duplicate of this id
    /// is dropped — answering it will be the original dispatch's job.
    InFlight,
    /// Resolved; redelivery replays this cached reply.
    Done(Result<ValVec, WireErr>),
}

/// One client session: the dedup cache plus the entry table, surviving
/// reconnects (the session key is client-chosen, the connection is not).
struct Session {
    object: ObjectHandle,
    /// Wire entry index → interned [`EntryId`], built once at first
    /// handshake (the wire analogue of resolving ids after spawn).
    entry_ids: Vec<EntryId>,
    entry_names: Vec<String>,
    calls: Mutex<HashMap<u64, CallState>>,
    /// The *current* connection's writer. Replies always go to the
    /// newest link: a reply computed during a dead connection is cached,
    /// and the client's retry replays it over the new one.
    writer: Mutex<Option<Arc<dyn Link>>>,
}

/// Advisory counters for the server ([`NetServer::stats`]).
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    /// Connections accepted (handshakes completed).
    pub connections: Counter,
    /// Calls dispatched to an entry body.
    pub executed: Counter,
    /// Cached replies replayed for redelivered call ids.
    pub replayed: Counter,
    /// Duplicate deliveries of in-flight call ids dropped.
    pub suppressed: Counter,
    /// Connections killed by undecodable frames.
    pub frame_errors: Counter,
}

struct ServerInner {
    rt: Runtime,
    objects: Mutex<HashMap<String, ObjectHandle>>,
    sessions: Mutex<HashMap<(String, u64), Arc<Session>>>,
    stats: ServerStats,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
}

/// Serves a set of objects over [`Link`]s. Clone to share.
///
/// ```
/// use alps_core::{EntryDef, ObjectBuilder, Ty, Value};
/// use alps_net::{NetServer, RemoteHandle};
/// use alps_runtime::Runtime;
///
/// let rt = Runtime::threaded();
/// let obj = ObjectBuilder::new("Echo")
///     .entry(
///         EntryDef::new("Id")
///             .params([Ty::Int])
///             .results([Ty::Int])
///             .body(|_ctx, args| Ok(args)),
///     )
///     .spawn(&rt)
///     .unwrap();
/// let server = NetServer::new(&rt);
/// server.register(&obj);
/// let client = RemoteHandle::new(&rt, "Echo", server.mem_connector());
/// let r = client.call("Id", vec![Value::Int(7)]).unwrap();
/// assert_eq!(r, vec![Value::Int(7)]);
/// # server.shutdown();
/// # obj.shutdown();
/// ```
#[derive(Clone)]
pub struct NetServer {
    inner: Arc<ServerInner>,
}

impl NetServer {
    /// New server with no objects registered.
    pub fn new(rt: &Runtime) -> NetServer {
        NetServer {
            inner: Arc::new(ServerInner {
                rt: rt.clone(),
                objects: Mutex::new(HashMap::new()),
                sessions: Mutex::new(HashMap::new()),
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                conn_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Expose an object to remote callers under its own name.
    pub fn register(&self, object: &ObjectHandle) {
        self.inner
            .objects
            .lock()
            .insert(object.name().to_string(), object.clone());
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.clone()
    }

    /// Stop accepting connections. Existing connections die on their
    /// next frame; listeners wake and exit.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }

    /// Serve one established link on a daemon process. Returns
    /// immediately; the connection loop runs until the link dies.
    pub fn serve_link(&self, link: Arc<dyn Link>) {
        let inner = Arc::clone(&self.inner);
        let n = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.rt.spawn_with(
            Spawn::new(format!("net.conn.{n}")).daemon(true),
            move || inner.serve_conn(link),
        );
    }

    /// Accept loop over loopback/real TCP. Binds `addr` (use port 0 for
    /// ephemeral), returns the bound address, and serves each accepted
    /// stream on its own daemon process.
    ///
    /// # Errors
    ///
    /// Bind failure.
    pub fn listen_tcp(&self, addr: &str) -> io::Result<std::net::SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let this = self.clone();
        self.inner
            .rt
            .spawn_with(Spawn::new("net.accept.tcp").daemon(true), move || {
                for stream in listener.incoming() {
                    if this.inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match TcpLink::new(stream) {
                        Ok(link) => this.serve_link(Arc::new(link)),
                        Err(_) => continue,
                    }
                }
            });
        Ok(local)
    }

    /// Accept loop over a Unix-domain socket at `path`.
    ///
    /// # Errors
    ///
    /// Bind failure (e.g. the path exists).
    #[cfg(unix)]
    pub fn listen_unix(&self, path: &std::path::Path) -> io::Result<()> {
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        let this = self.clone();
        self.inner
            .rt
            .spawn_with(Spawn::new("net.accept.unix").daemon(true), move || {
                for stream in listener.incoming() {
                    if this.inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match crate::link::UnixLink::new(stream) {
                        Ok(link) => this.serve_link(Arc::new(link)),
                        Err(_) => continue,
                    }
                }
            });
        Ok(())
    }

    /// An in-memory connector to this server: each
    /// [`connect`](crate::client::Connector::connect) creates a
    /// [`MemLink`] pair and hands the server end to a daemon accept
    /// loop. Because the whole transport is runtime [`Chan`]s, a client
    /// and server sharing a [`SimRuntime`](alps_runtime::SimRuntime)
    /// exercise the full wire protocol deterministically.
    pub fn mem_connector(&self) -> crate::client::MemConnector {
        let accept: Chan<Arc<MemLink>> = Chan::unbounded("net.accept.mem");
        let this = self.clone();
        let rx = accept.clone();
        self.inner
            .rt
            .spawn_with(Spawn::new("net.accept.mem").daemon(true), move || {
                while let Ok(server_end) = rx.recv(&this.inner.rt) {
                    if this.inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    this.serve_link(server_end);
                }
            });
        crate::client::MemConnector::new(&self.inner.rt, accept)
    }
}

impl ServerInner {
    /// Handshake + frame loop for one connection. Any protocol breach —
    /// an undecodable frame, a non-`Hello` opener, a `Call` before
    /// handshake — kills the connection; the client's supervision
    /// reconnects and its dedup-protected retries resume.
    fn serve_conn(self: Arc<Self>, link: Arc<dyn Link>) {
        let session = match self.handshake(&link) {
            Some(s) => s,
            None => {
                link.shutdown();
                return;
            }
        };
        self.stats.connections.incr();
        *session.writer.lock() = Some(Arc::clone(&link));

        while let Ok(bytes) = link.recv() {
            match decode_frame(&bytes) {
                Ok((
                    Frame::Call {
                        call,
                        ack_below,
                        entry,
                        budget,
                        args,
                    },
                    _,
                )) => self.on_call(&session, call, ack_below, entry, budget, args),
                Ok(_) => break, // protocol breach: only calls after handshake
                Err(_) => {
                    // Corruption reached us (or framing desynced): the
                    // stream can no longer be trusted to carry call ids
                    // faithfully. Kill the connection — never guess.
                    self.stats.frame_errors.incr();
                    break;
                }
            }
        }
        link.shutdown();
        // Forget this link as the session's reply path iff it is still
        // the current one (a reconnect may already have replaced it).
        let mut w = session.writer.lock();
        if w.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, &link)) {
            *w = None;
        }
    }

    /// Run the `Hello`/`HelloAck` exchange. Returns the (possibly
    /// pre-existing) session, or `None` when the connection must die.
    fn handshake(&self, link: &Arc<dyn Link>) -> Option<Arc<Session>> {
        let bytes = link.recv().ok()?;
        let (frame, _) = match decode_frame(&bytes) {
            Ok(f) => f,
            Err(_) => {
                self.stats.frame_errors.incr();
                return None;
            }
        };
        let Frame::Hello {
            version,
            session,
            object,
        } = frame
        else {
            return None;
        };
        if version != PROTO_VERSION {
            let _ = self.refuse(
                link,
                WireErr {
                    code: 0,
                    a: format!("protocol version {version} unsupported"),
                    b: String::new(),
                    aux: 0,
                },
            );
            return None;
        }
        let Some(handle) = self.objects.lock().get(&object).cloned() else {
            let _ = self.refuse(
                link,
                WireErr {
                    code: 0,
                    a: format!("no object named `{object}` is registered"),
                    b: String::new(),
                    aux: 0,
                },
            );
            return None;
        };
        let sess = {
            let mut sessions = self.sessions.lock();
            Arc::clone(
                sessions
                    .entry((object, session))
                    .or_insert_with(|| Arc::new(Session::new(handle))),
            )
        };
        let entries = sess
            .entry_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        let ack = encode_frame(&Frame::HelloAck { entries }).ok()?;
        link.send(&ack).ok()?;
        Some(sess)
    }

    fn refuse(&self, link: &Arc<dyn Link>, err: WireErr) -> io::Result<()> {
        let frame = encode_frame(&Frame::HelloErr { err })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        link.send(&frame)
    }

    /// Handle one `Call` frame: prune, dedup, dispatch.
    fn on_call(
        self: &Arc<Self>,
        session: &Arc<Session>,
        call: u64,
        ack_below: u64,
        entry: u32,
        budget: u64,
        args: ValVec,
    ) {
        {
            let mut calls = session.calls.lock();
            // The client vouches that every id below the watermark is
            // resolved on its side; their cached replies can never be
            // asked for again. InFlight markers stay — pruning one would
            // let a late duplicate re-execute the body.
            calls.retain(|&id, st| id >= ack_below || matches!(st, CallState::InFlight));
            match calls.get(&call) {
                Some(CallState::Done(cached)) => {
                    let cached = cached.clone();
                    drop(calls);
                    self.stats.replayed.incr();
                    self.reply(session, call, cached);
                    return;
                }
                Some(CallState::InFlight) => {
                    // The original dispatch will answer; a second
                    // execution is exactly what dedup exists to prevent.
                    self.stats.suppressed.incr();
                    return;
                }
                None => {
                    calls.insert(call, CallState::InFlight);
                }
            }
        }
        self.stats.executed.incr();
        let this = Arc::clone(self);
        let session = Arc::clone(session);
        self.rt.spawn_with(
            Spawn::new(format!("net.call.{call}")).daemon(true),
            move || {
                let result = this.dispatch(&session, entry, budget, args);
                let retryable = matches!(&result, Err(e) if wire_is_retryable(e));
                {
                    let mut calls = session.calls.lock();
                    if retryable {
                        // The body never ran (shed / restart sweep) or
                        // timed out without an answer: drop the marker so
                        // the client's retry of this id re-executes
                        // rather than replaying a refusal.
                        calls.remove(&call);
                    } else {
                        calls.insert(call, CallState::Done(result.clone()));
                    }
                }
                // Cache first, send second: if the reply frame dies with
                // the link, the client's retry finds the cached verdict.
                this.reply(&session, call, result);
            },
        );
    }

    /// Run the entry body, mapping every failure onto the wire taxonomy.
    fn dispatch(
        &self,
        session: &Session,
        entry: u32,
        budget: u64,
        args: ValVec,
    ) -> Result<ValVec, WireErr> {
        let Some(&eid) = session.entry_ids.get(entry as usize) else {
            return Err(err_to_wire(&AlpsError::UnknownEntry {
                object: session.object.name().to_string(),
                entry: format!("#{entry}"),
            }));
        };
        let r = if budget == NO_BUDGET {
            session.object.call_id(eid, args)
        } else {
            // The budget crossed the wire as *remaining ticks*; re-anchor
            // it on this process's clock (no shared clock exists).
            session.object.call_id_deadline(eid, args, budget.max(1))
        };
        r.map_err(|e| err_to_wire(&e))
    }

    /// Send a reply over the session's current link, if any. A send
    /// failure is deliberately ignored: the reply is already cached, and
    /// the client's dedup-protected retry will replay it after
    /// reconnecting.
    fn reply(&self, session: &Session, call: u64, result: Result<ValVec, WireErr>) {
        let Ok(frame) = encode_frame(&Frame::Reply { call, result }) else {
            return;
        };
        let writer = session.writer.lock().clone();
        if let Some(link) = writer {
            let _ = link.send(&frame);
        }
    }
}

impl Session {
    fn new(object: ObjectHandle) -> Session {
        let entry_names = object.entry_names();
        let entry_ids = entry_names
            .iter()
            .map(|n| {
                object
                    .entry_id(n)
                    .expect("entry_names() only yields resolvable entries")
            })
            .collect();
        Session {
            object,
            entry_ids,
            entry_names,
            calls: Mutex::new(HashMap::new()),
            writer: Mutex::new(None),
        }
    }
}

/// Whether a wire error maps back to a retryable [`AlpsError`] — the
/// server-side mirror of [`AlpsError::is_retryable`], used to decide
/// cache-vs-forget (kept as one conversion so the taxonomies cannot
/// drift).
fn wire_is_retryable(w: &WireErr) -> bool {
    crate::wire::wire_to_err(w).is_retryable()
}
