//! Deterministic transport fault injection.
//!
//! [`NetFaultPlan`] extends the runtime's [`FaultPlan`](alps_runtime::FaultPlan)
//! idea to the network boundary: drops, delays, duplicates, byte
//! corruption, and forced disconnects, all driven by a seeded xorshift
//! stream so a 256-seed sweep (and the strategy explorer riding on it)
//! replays the same failures from the same seed.
//!
//! The plan is *schedule-free*: it decides per frame, at the link's send
//! and receive points ([`FaultyLink`](crate::link::FaultyLink)), so the
//! same plan composes with either executor — virtual delays under the
//! sim, real sleeps under threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// What should happen to a frame about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPlan {
    /// Silently drop the frame (the peer never sees it).
    Drop,
    /// Kill the link mid-call: the send fails and the connection dies.
    Disconnect,
    /// Deliver, possibly late / twice / damaged.
    Deliver {
        /// Ticks to sleep before handing the frame to the real link.
        delay_ticks: u64,
        /// Send the frame a second time (exercises receiver dedup).
        dup: bool,
        /// Flip the low bits of one byte: `(offset_seed, xor_mask)`.
        /// The offset seed is reduced modulo the frame's *body* span so
        /// the length prefix is never damaged — corrupting the length
        /// field would desync the stream framing itself, which reads as
        /// a disconnect, a different (already covered) fault.
        corrupt: Option<(u64, u8)>,
    },
}

/// What should happen to a frame just received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvPlan {
    /// Pretend it never arrived.
    Drop,
    /// Deliver after a delay (0 = immediately).
    Deliver {
        /// Ticks to sleep before surfacing the frame.
        delay_ticks: u64,
    },
}

/// Probabilities and triggers for transport faults. All rates are in
/// `[0, 1]`; `0.0` disables that fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Probability a sent frame is silently dropped.
    pub drop_send: f64,
    /// Probability a received frame is silently dropped.
    pub drop_recv: f64,
    /// Probability a frame is delayed.
    pub delay_rate: f64,
    /// Maximum delay in ticks (uniform in `[1, max]`).
    pub delay_max_ticks: u64,
    /// Probability a sent frame is duplicated.
    pub dup_rate: f64,
    /// Probability a sent frame has one byte corrupted.
    pub corrupt_rate: f64,
    /// Probability a send tears the connection down instead.
    pub disconnect_rate: f64,
    /// Deterministically disconnect after every N sends (0 = off).
    /// Unlike `disconnect_rate` this guarantees the reconnect path runs
    /// even on seeds where the dice never come up.
    pub disconnect_every: u64,
}

impl NetFaultPlan {
    /// A quiet plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            drop_send: 0.0,
            drop_recv: 0.0,
            delay_rate: 0.0,
            delay_max_ticks: 0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            disconnect_rate: 0.0,
            disconnect_every: 0,
        }
    }

    /// The default sweep mix: a little of everything, scaled by `seed`
    /// only through the decision stream (the rates are fixed so every
    /// seed explores the same regime with different timing).
    pub fn chaos(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            drop_send: 0.05,
            drop_recv: 0.05,
            delay_rate: 0.10,
            delay_max_ticks: 200,
            dup_rate: 0.05,
            corrupt_rate: 0.02,
            disconnect_rate: 0.01,
            disconnect_every: 40,
        }
    }

    /// Parse the `NET_FAULT` environment contract:
    ///
    /// ```text
    /// NET_FAULT="drop_send=0.05,drop_recv=0.05,delay=0.1:300,dup=0.05,\
    ///            corrupt=0.02,disconnect=0.01,disconnect_every=40,seed=7"
    /// ```
    ///
    /// Unknown keys and malformed values are ignored (a fault knob must
    /// never turn a benchmark run into a parse-error crash); an unset or
    /// empty variable returns `None`.
    pub fn from_env() -> Option<NetFaultPlan> {
        let spec = std::env::var("NET_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let mut plan = NetFaultPlan::seeded(0);
        for part in spec.split(',') {
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let (k, v) = (k.trim(), v.trim());
            let rate = || v.parse::<f64>().ok().filter(|r| (0.0..=1.0).contains(r));
            match k {
                "seed" => {
                    if let Ok(s) = v.parse() {
                        plan.seed = s;
                    }
                }
                "drop_send" => plan.drop_send = rate().unwrap_or(plan.drop_send),
                "drop_recv" => plan.drop_recv = rate().unwrap_or(plan.drop_recv),
                "dup" => plan.dup_rate = rate().unwrap_or(plan.dup_rate),
                "corrupt" => plan.corrupt_rate = rate().unwrap_or(plan.corrupt_rate),
                "disconnect" => plan.disconnect_rate = rate().unwrap_or(plan.disconnect_rate),
                "disconnect_every" => {
                    if let Ok(n) = v.parse() {
                        plan.disconnect_every = n;
                    }
                }
                "delay" => {
                    // rate:max_ticks, e.g. 0.1:300
                    let (r, m) = v.split_once(':').unwrap_or((v, "100"));
                    if let Ok(r) = r.parse::<f64>() {
                        if (0.0..=1.0).contains(&r) {
                            plan.delay_rate = r;
                            plan.delay_max_ticks = m.parse().unwrap_or(100);
                        }
                    }
                }
                _ => {}
            }
        }
        Some(plan)
    }
}

/// xorshift64* — the same tiny deterministic generator the sim executor
/// uses, kept private to the fault stream so fault decisions never
/// perturb (or depend on) scheduling randomness.
#[derive(Debug)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> FaultRng {
        FaultRng {
            state: seed | 1, // xorshift must not start at 0
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Live fault state for one link: the plan plus the seeded decision
/// stream and the send counter driving `disconnect_every`.
#[derive(Debug)]
pub struct NetFault {
    plan: NetFaultPlan,
    rng: Mutex<FaultRng>,
    sends: AtomicU64,
    dead: AtomicBool,
}

impl NetFault {
    /// Build fault state from a plan.
    pub fn new(plan: NetFaultPlan) -> NetFault {
        NetFault {
            rng: Mutex::new(FaultRng::new(plan.seed)),
            plan,
            sends: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Reset the forced-disconnect latch (the client calls this when it
    /// reconnects, so the *new* link gets its own fault budget).
    pub fn revive(&self) {
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Decide the fate of an outgoing frame.
    pub fn on_send(&self) -> SendPlan {
        if self.dead.swap(false, Ordering::Relaxed) {
            // A prior decision latched a disconnect; honour it once.
            return SendPlan::Disconnect;
        }
        let n = self.sends.fetch_add(1, Ordering::Relaxed) + 1;
        let mut rng = self.rng.lock();
        if self.plan.disconnect_every != 0 && n.is_multiple_of(self.plan.disconnect_every) {
            return SendPlan::Disconnect;
        }
        if self.plan.disconnect_rate > 0.0 && rng.unit() < self.plan.disconnect_rate {
            return SendPlan::Disconnect;
        }
        if self.plan.drop_send > 0.0 && rng.unit() < self.plan.drop_send {
            return SendPlan::Drop;
        }
        let delay_ticks = if self.plan.delay_rate > 0.0 && rng.unit() < self.plan.delay_rate {
            1 + rng.next() % self.plan.delay_max_ticks.max(1)
        } else {
            0
        };
        let dup = self.plan.dup_rate > 0.0 && rng.unit() < self.plan.dup_rate;
        let corrupt = if self.plan.corrupt_rate > 0.0 && rng.unit() < self.plan.corrupt_rate {
            let offset_seed = rng.next();
            let mask = (rng.next() as u8) | 1; // never a 0 mask (a no-op flip)
            Some((offset_seed, mask))
        } else {
            None
        };
        SendPlan::Deliver {
            delay_ticks,
            dup,
            corrupt,
        }
    }

    /// Decide the fate of an incoming frame.
    pub fn on_recv(&self) -> RecvPlan {
        let mut rng = self.rng.lock();
        if self.plan.drop_recv > 0.0 && rng.unit() < self.plan.drop_recv {
            return RecvPlan::Drop;
        }
        let delay_ticks = if self.plan.delay_rate > 0.0 && rng.unit() < self.plan.delay_rate {
            1 + rng.next() % self.plan.delay_max_ticks.max(1)
        } else {
            0
        };
        RecvPlan::Deliver { delay_ticks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_always_delivers() {
        let f = NetFault::new(NetFaultPlan::seeded(42));
        for _ in 0..100 {
            assert_eq!(
                f.on_send(),
                SendPlan::Deliver {
                    delay_ticks: 0,
                    dup: false,
                    corrupt: None
                }
            );
            assert_eq!(f.on_recv(), RecvPlan::Deliver { delay_ticks: 0 });
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = NetFault::new(NetFaultPlan::chaos(7));
        let b = NetFault::new(NetFaultPlan::chaos(7));
        for _ in 0..200 {
            assert_eq!(a.on_send(), b.on_send());
            assert_eq!(a.on_recv(), b.on_recv());
        }
    }

    #[test]
    fn disconnect_every_fires_deterministically() {
        let mut plan = NetFaultPlan::seeded(1);
        plan.disconnect_every = 5;
        let f = NetFault::new(plan);
        let mut disconnects = 0;
        for i in 1..=20u64 {
            if f.on_send() == SendPlan::Disconnect {
                disconnects += 1;
                assert_eq!(i % 5, 0, "disconnect off-schedule at send {i}");
            }
        }
        assert_eq!(disconnects, 4);
    }

    #[test]
    fn env_contract_parses() {
        // Parse via the same splitter from_env uses, without touching the
        // process environment (tests run in parallel).
        std::env::set_var(
            "NET_FAULT",
            "drop_send=0.25,delay=0.5:300,dup=0.1,disconnect_every=9,seed=11,junk=zzz",
        );
        let plan = NetFaultPlan::from_env().unwrap();
        std::env::remove_var("NET_FAULT");
        assert_eq!(plan.seed, 11);
        assert!((plan.drop_send - 0.25).abs() < 1e-12);
        assert!((plan.delay_rate - 0.5).abs() < 1e-12);
        assert_eq!(plan.delay_max_ticks, 300);
        assert!((plan.dup_rate - 0.1).abs() < 1e-12);
        assert_eq!(plan.disconnect_every, 9);
        assert_eq!(plan.drop_recv, 0.0, "unset knobs stay quiet");
    }
}
