//! The client side: [`RemoteHandle`], a proxy that speaks the
//! [`ObjectHandle`](alps_core::ObjectHandle) call surface
//! (`call` / `call_deadline` / `call_retry` and their interned-id forms)
//! to an object living in another process.
//!
//! # Partial failure model
//!
//! A remote call can fail in one way an in-process call cannot: the link
//! can die with the call in flight, leaving the caller unable to tell
//! whether the body ran. That outcome surfaces as
//! [`AlpsError::LinkLost`] — a member of the *transient* taxonomy
//! ([`AlpsError::is_retryable`]) because the server deduplicates call
//! ids per session: retrying the same logical call re-sends the same
//! wire id, and the server either replays the cached reply (the body
//! ran; the reply was lost) or executes it for the first time (the call
//! was lost). Either way the body runs **at most once**.
//!
//! # Connection supervision
//!
//! The handle supervises its connection the way the object layer
//! supervises managers: a dead link moves the connection to `Down`, the
//! next caller becomes the reconnector (seeded-jitter exponential
//! backoff, bounded attempts), and everyone else parks on a
//! [`Notifier`] until the connection resolves. In-flight calls at the
//! moment of death are swept with `LinkLost` — they never hang on a
//! connection that no longer exists, mirroring how a supervised
//! restart sweeps its in-flight calls with `ObjectRestarting`.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{hash_values, spread, AlpsError, Backoff, Result, RetryPolicy, ValVec, Value};
use alps_runtime::metrics::Counter;
use alps_runtime::{Chan, Notifier, Runtime, Spawn};
use parking_lot::Mutex;

use crate::fault::{NetFault, NetFaultPlan};
use crate::link::{FaultyLink, Link, MemLink, TcpLink};
use crate::wire::{decode_frame, encode_frame, wire_to_err, Frame, NO_BUDGET, PROTO_VERSION};

/// Dials one endpoint. The handle redials through this after every link
/// death, so a connector must be reusable.
pub trait Connector: Send + Sync {
    /// Establish a fresh link.
    ///
    /// # Errors
    ///
    /// Transport-level dial failure (the handle backs off and retries).
    fn connect(&self) -> io::Result<Arc<dyn Link>>;

    /// Human-readable endpoint for error messages.
    fn endpoint(&self) -> String;
}

/// Dials a TCP address.
pub struct TcpConnector {
    addr: String,
}

impl TcpConnector {
    /// Connector for `addr` (e.g. `"127.0.0.1:4100"`).
    pub fn new(addr: impl Into<String>) -> TcpConnector {
        TcpConnector { addr: addr.into() }
    }
}

impl Connector for TcpConnector {
    fn connect(&self) -> io::Result<Arc<dyn Link>> {
        let stream = std::net::TcpStream::connect(&self.addr)?;
        Ok(Arc::new(TcpLink::new(stream)?))
    }

    fn endpoint(&self) -> String {
        format!("tcp:{}", self.addr)
    }
}

/// Dials a Unix-domain socket path.
#[cfg(unix)]
pub struct UnixConnector {
    path: std::path::PathBuf,
}

#[cfg(unix)]
impl UnixConnector {
    /// Connector for the socket at `path`.
    pub fn new(path: impl Into<std::path::PathBuf>) -> UnixConnector {
        UnixConnector { path: path.into() }
    }
}

#[cfg(unix)]
impl Connector for UnixConnector {
    fn connect(&self) -> io::Result<Arc<dyn Link>> {
        let stream = std::os::unix::net::UnixStream::connect(&self.path)?;
        Ok(Arc::new(crate::link::UnixLink::new(stream)?))
    }

    fn endpoint(&self) -> String {
        format!("unix:{}", self.path.display())
    }
}

/// Dials an in-process [`NetServer`](crate::server::NetServer) through
/// [`MemLink`] pairs — the deterministic transport for simulation
/// sweeps. Obtained from
/// [`NetServer::mem_connector`](crate::server::NetServer::mem_connector).
#[derive(Clone)]
pub struct MemConnector {
    rt: Runtime,
    accept: Chan<Arc<MemLink>>,
    seq: Arc<AtomicU64>,
}

impl MemConnector {
    pub(crate) fn new(rt: &Runtime, accept: Chan<Arc<MemLink>>) -> MemConnector {
        MemConnector {
            rt: rt.clone(),
            accept,
            seq: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Connector for MemConnector {
    fn connect(&self) -> io::Result<Arc<dyn Link>> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let (client_end, server_end) = MemLink::pair(&self.rt, &format!("conn{n}"));
        self.accept
            .send(&self.rt, server_end)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "server gone"))?;
        Ok(client_end)
    }

    fn endpoint(&self) -> String {
        "mem:server".into()
    }
}

/// Reconnect supervision: how hard an attempt chases a dead link before
/// giving the caller [`AlpsError::LinkLost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Dial attempts per reconnect episode (`0` is treated as `1`).
    pub max_attempts: u32,
    /// First backoff delay in ticks (doubles per attempt, jittered to
    /// `[d/2, d]` from the runtime's deterministic random stream).
    pub base_ticks: u64,
    /// Upper bound on the un-jittered delay.
    pub cap_ticks: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 4,
            base_ticks: 200,
            cap_ticks: 5_000,
        }
    }
}

/// An entry name interned for remote calling. Unlike an in-process
/// [`EntryId`](alps_core::EntryId), the numeric index is per-connection
/// (it comes from the handshake's entry table), so the interned form
/// keeps the name and resolves it against the live table at call time.
#[derive(Debug, Clone)]
pub struct RemoteEntryId {
    name: Arc<str>,
}

impl RemoteEntryId {
    /// The entry name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Advisory counters for a remote handle ([`RemoteHandle::stats`]).
#[derive(Debug, Default, Clone)]
pub struct RemoteStats {
    /// Wire call attempts sent.
    pub sent: Counter,
    /// Replies received and delivered to callers.
    pub replies: Counter,
    /// Link deaths observed (sweeps of in-flight calls).
    pub link_losses: Counter,
    /// Successful reconnect episodes.
    pub reconnects: Counter,
    /// Retries performed by `call_retry`-family methods.
    pub retries: Counter,
}

impl RemoteStats {
    /// Fold another handle's counters into this snapshot (saturating,
    /// like every multi-process stat fold in this workspace).
    fn absorb(&self, other: &RemoteStats) {
        self.sent.add(other.sent.get());
        self.replies.add(other.replies.get());
        self.link_losses.add(other.link_losses.get());
        self.reconnects.add(other.reconnects.get());
        self.retries.add(other.retries.get());
    }
}

/// Connection state machine. All transitions happen under the one
/// `conn` mutex, but the *work* (dialing, handshaking, backoff sleeps)
/// happens outside it — holding a lock across a blocking operation
/// would wedge the cooperative simulation executor.
enum Conn {
    /// No link; the next caller starts a reconnect episode.
    Down,
    /// Somebody is dialing; park on the notifier until it resolves.
    Connecting,
    /// Live link with its handshake-interned entry table.
    Up {
        epoch: u64,
        link: Arc<dyn Link>,
        entries: Arc<HashMap<String, u32>>,
    },
}

/// A caller parked on a reply slot.
struct PendingCall {
    result: Mutex<Option<std::result::Result<ValVec, AlpsError>>>,
}

struct RemoteInner {
    rt: Runtime,
    object: String,
    /// Client-chosen session id: the server keys its dedup cache on it,
    /// which is what makes retry-after-reconnect at-most-once.
    session: u64,
    connector: Box<dyn Connector>,
    fault: Option<Arc<NetFault>>,
    reconnect: ReconnectPolicy,
    conn: Mutex<Conn>,
    conn_epoch: AtomicU64,
    pending: Mutex<HashMap<u64, Arc<PendingCall>>>,
    /// Wire ids of *logical* calls still unresolved. The smallest member
    /// is the `ack_below` watermark sent with every call; holding the id
    /// for the whole retry loop (not per attempt) is what stops the
    /// server from pruning a cached reply this caller may still replay.
    outstanding: Mutex<BTreeSet<u64>>,
    next_call: AtomicU64,
    notifier: Arc<Notifier>,
    stats: RemoteStats,
}

/// Proxy to an object served by a remote
/// [`NetServer`](crate::server::NetServer). Clone to share; clones share
/// the connection, session, and dedup watermark.
///
/// See [`NetServer`](crate::server::NetServer) for a round-trip example.
#[derive(Clone)]
pub struct RemoteHandle {
    inner: Arc<RemoteInner>,
}

impl RemoteHandle {
    /// A handle for `object` dialed through `connector`. Connection is
    /// lazy: the first call (or a call after a link death) dials.
    pub fn new(
        rt: &Runtime,
        object: impl Into<String>,
        connector: impl Connector + 'static,
    ) -> RemoteHandle {
        let mut session = rt.rand_u64();
        if session == 0 {
            session = 1;
        }
        RemoteHandle {
            inner: Arc::new(RemoteInner {
                rt: rt.clone(),
                object: object.into(),
                session,
                connector: Box::new(connector),
                fault: None,
                reconnect: ReconnectPolicy::default(),
                conn: Mutex::new(Conn::Down),
                conn_epoch: AtomicU64::new(0),
                pending: Mutex::new(HashMap::new()),
                outstanding: Mutex::new(BTreeSet::new()),
                next_call: AtomicU64::new(1),
                notifier: Arc::new(Notifier::new()),
                stats: RemoteStats::default(),
            }),
        }
    }

    /// Replace the reconnect policy.
    #[must_use]
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> RemoteHandle {
        Arc::get_mut(&mut self.inner)
            .expect("configure the handle before cloning it")
            .reconnect = policy;
        self
    }

    /// Install a transport fault plan: every established link is wrapped
    /// in a [`FaultyLink`] driven by this seeded plan. Handshake frames
    /// are exempt (faults target calls in flight; an unbounded handshake
    /// hang would just be a dial failure, already covered by reconnect).
    #[must_use]
    pub fn with_fault(mut self, plan: NetFaultPlan) -> RemoteHandle {
        Arc::get_mut(&mut self.inner)
            .expect("configure the handle before cloning it")
            .fault = Some(Arc::new(NetFault::new(plan)));
        self
    }

    /// The remote object's name.
    pub fn object(&self) -> &str {
        &self.inner.object
    }

    /// The endpoint this handle dials.
    pub fn endpoint(&self) -> String {
        self.inner.connector.endpoint()
    }

    /// Counters for this handle.
    pub fn stats(&self) -> RemoteStats {
        self.inner.stats.clone()
    }

    /// Intern an entry name for repeated calling (the remote analogue of
    /// [`ObjectHandle::entry_id`](alps_core::ObjectHandle::entry_id)).
    /// Resolution against the server's entry table happens per call, so
    /// a name the server does not export fails with
    /// [`AlpsError::UnknownEntry`] at call time, not here.
    pub fn entry_id(&self, entry: &str) -> RemoteEntryId {
        RemoteEntryId {
            name: Arc::from(entry),
        }
    }

    /// Remote `X.P(params, results)`: call and block for the reply.
    ///
    /// # Errors
    ///
    /// Everything the in-process call can return (the server propagates
    /// its [`AlpsError`] over the wire), plus [`AlpsError::LinkLost`]
    /// when the connection dies with the call in flight.
    pub fn call(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        self.call_id(&self.entry_id(entry), args).map(Vec::from)
    }

    /// [`call`](Self::call) through an interned [`RemoteEntryId`].
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn call_id(&self, id: &RemoteEntryId, args: impl Into<ValVec>) -> Result<ValVec> {
        self.logical_call(id, args.into(), None)
    }

    /// Deadline-bounded remote call: `ticks` bounds the whole affair —
    /// dialing, the wire round trip, and the entry body. The deadline
    /// crosses the wire as a *remaining budget* (the processes share no
    /// clock), so the server re-anchors it on its own clock.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call), plus [`AlpsError::Timeout`] on expiry.
    pub fn call_deadline(&self, entry: &str, args: Vec<Value>, ticks: u64) -> Result<Vec<Value>> {
        self.call_id_deadline(&self.entry_id(entry), args, ticks)
            .map(Vec::from)
    }

    /// Deadline-bounded variant of [`call_id`](Self::call_id).
    ///
    /// # Errors
    ///
    /// As [`call_deadline`](Self::call_deadline).
    pub fn call_id_deadline(
        &self,
        id: &RemoteEntryId,
        args: impl Into<ValVec>,
        ticks: u64,
    ) -> Result<ValVec> {
        let deadline = self.inner.rt.now().saturating_add(ticks.max(1));
        self.logical_call(id, args.into(), Some(deadline))
    }

    /// Retry transient failures per `policy`, exactly like
    /// [`ObjectHandle::call_retry`](alps_core::ObjectHandle::call_retry)
    /// — same budget splitting, same seeded backoff — with one addition
    /// to the transient set: [`AlpsError::LinkLost`]. Every attempt
    /// re-sends the **same wire call id**, so the server's session dedup
    /// cache makes the retries at-most-once-executed: a retry of a call
    /// whose reply was lost replays the cached reply instead of running
    /// the body again.
    ///
    /// # Errors
    ///
    /// As [`call_deadline`](Self::call_deadline); when every attempt
    /// fails transiently, the *last* transient error is returned.
    pub fn call_retry(
        &self,
        entry: &str,
        args: Vec<Value>,
        policy: RetryPolicy,
    ) -> Result<Vec<Value>> {
        self.call_id_retry(&self.entry_id(entry), args, policy)
            .map(Vec::from)
    }

    /// [`call_retry`](Self::call_retry) through an interned id.
    ///
    /// # Errors
    ///
    /// As [`call_retry`](Self::call_retry).
    pub fn call_id_retry(
        &self,
        id: &RemoteEntryId,
        args: impl Into<ValVec>,
        policy: RetryPolicy,
    ) -> Result<ValVec> {
        let inner = &self.inner;
        let args: ValVec = args.into();
        let wire_id = inner.alloc_call();
        let attempts = policy.max_attempts.max(1);
        let deadline = inner.rt.now().saturating_add(policy.budget_ticks.max(1));
        let mut last = None;
        for k in 0..attempts {
            let remaining = deadline.saturating_sub(inner.rt.now());
            if remaining == 0 {
                break;
            }
            // Same shape as the in-process loop: the remaining budget is
            // split evenly over the remaining attempts.
            let per = (remaining / u64::from(attempts - k)).max(1);
            let attempt_deadline = inner.rt.now().saturating_add(per);
            match inner.attempt(wire_id, &id.name, args.clone(), Some(attempt_deadline)) {
                Ok(r) => {
                    inner.release_call(wire_id);
                    return Ok(r);
                }
                Err(e) if e.is_retryable() => {
                    last = Some(e);
                    if k + 1 == attempts {
                        break;
                    }
                    inner.stats.retries.incr();
                    let delay = match policy.backoff {
                        Backoff::None => 0,
                        Backoff::Fixed(t) => t,
                        Backoff::ExpJitter { base, cap } => {
                            let d = base.checked_shl(k).unwrap_or(u64::MAX).min(cap);
                            let lo = d / 2;
                            lo + if d > lo {
                                inner.rt.rand_u64() % (d - lo + 1)
                            } else {
                                0
                            }
                        }
                    };
                    // Floor at one tick: with zero backoff a refused call
                    // (Overloaded/Restarting travels the wire in zero
                    // *virtual* time under the sim) would burn every
                    // attempt inside one scheduling window.
                    let sleep = delay.max(1).min(deadline.saturating_sub(inner.rt.now()));
                    inner.rt.sleep(sleep);
                }
                Err(e) => {
                    inner.release_call(wire_id);
                    return Err(e);
                }
            }
        }
        inner.release_call(wire_id);
        Err(last.unwrap_or(AlpsError::Timeout {
            what: id.name.to_string(),
            ticks: policy.budget_ticks,
        }))
    }

    /// One logical call = one wire id held for its whole lifetime.
    fn logical_call(
        &self,
        id: &RemoteEntryId,
        args: ValVec,
        deadline: Option<u64>,
    ) -> Result<ValVec> {
        let wire_id = self.inner.alloc_call();
        let r = self.inner.attempt(wire_id, &id.name, args, deadline);
        self.inner.release_call(wire_id);
        r
    }
}

impl RemoteInner {
    fn alloc_call(&self) -> u64 {
        let id = self.next_call.fetch_add(1, Ordering::Relaxed);
        self.outstanding.lock().insert(id);
        id
    }

    fn release_call(&self, id: u64) {
        self.outstanding.lock().remove(&id);
    }

    fn link_lost(&self) -> AlpsError {
        AlpsError::LinkLost {
            endpoint: format!("{} ({})", self.connector.endpoint(), self.object),
        }
    }

    /// One wire attempt: ensure a connection, send the call, wait for
    /// the reply slot to fill (by the reader, or by the link-death
    /// sweep), bounded by `deadline`.
    fn attempt(
        self: &Arc<Self>,
        wire_id: u64,
        entry: &str,
        args: ValVec,
        deadline: Option<u64>,
    ) -> Result<ValVec> {
        let (epoch, link, entries) = self.ensure_up(deadline)?;
        let Some(&entry_idx) = entries.get(entry) else {
            return Err(AlpsError::UnknownEntry {
                object: self.object.clone(),
                entry: entry.to_string(),
            });
        };
        let budget = match deadline {
            None => NO_BUDGET,
            Some(d) => {
                let rem = d.saturating_sub(self.rt.now());
                if rem == 0 {
                    return Err(AlpsError::Timeout {
                        what: entry.to_string(),
                        ticks: 0,
                    });
                }
                rem
            }
        };
        let ack_below = self
            .outstanding
            .lock()
            .iter()
            .next()
            .copied()
            .unwrap_or(wire_id);
        let frame = encode_frame(&Frame::Call {
            call: wire_id,
            ack_below,
            entry: entry_idx,
            budget,
            args,
        })
        .map_err(|e| AlpsError::Custom(format!("unsendable arguments: {e}")))?;

        let slot = Arc::new(PendingCall {
            result: Mutex::new(None),
        });
        self.pending.lock().insert(wire_id, Arc::clone(&slot));

        if link.send(&frame).is_err() {
            self.pending.lock().remove(&wire_id);
            self.mark_down(epoch, &link);
            return Err(self.link_lost());
        }
        self.stats.sent.incr();

        // The reader may have died and swept `pending` *before* our
        // insert (the sweep only sees slots present at death). If the
        // epoch has moved on, nobody will ever fill our slot: resolve it
        // ourselves.
        if self.conn_epoch.load(Ordering::Acquire) != epoch {
            let mut r = slot.result.lock();
            if r.is_none() {
                *r = Some(Err(self.link_lost()));
            }
        }

        loop {
            let seen = self.notifier.epoch();
            if let Some(result) = slot.result.lock().take() {
                self.pending.lock().remove(&wire_id);
                if result.is_ok() {
                    self.stats.replies.incr();
                }
                return result;
            }
            match deadline {
                None => self.notifier.wait_past(&self.rt, seen),
                Some(d) => {
                    if self.rt.now() >= d {
                        self.pending.lock().remove(&wire_id);
                        return Err(AlpsError::Timeout {
                            what: entry.to_string(),
                            ticks: d.saturating_sub(self.rt.now()),
                        });
                    }
                    self.notifier.wait_past_deadline(&self.rt, seen, d);
                    if self.rt.now() >= d && slot.result.lock().is_none() {
                        self.pending.lock().remove(&wire_id);
                        return Err(AlpsError::Timeout {
                            what: entry.to_string(),
                            ticks: 0,
                        });
                    }
                }
            }
        }
    }

    /// Get the live connection, dialing if necessary. The first caller
    /// to find the connection `Down` becomes the reconnector; everyone
    /// else parks on the notifier until the episode resolves.
    #[allow(clippy::type_complexity)]
    fn ensure_up(
        self: &Arc<Self>,
        deadline: Option<u64>,
    ) -> Result<(u64, Arc<dyn Link>, Arc<HashMap<String, u32>>)> {
        loop {
            let seen = self.notifier.epoch();
            {
                let mut conn = self.conn.lock();
                match &*conn {
                    Conn::Up {
                        epoch,
                        link,
                        entries,
                    } => return Ok((*epoch, Arc::clone(link), Arc::clone(entries))),
                    Conn::Connecting => {}
                    Conn::Down => {
                        *conn = Conn::Connecting;
                        drop(conn);
                        return self.reconnect_episode(deadline);
                    }
                }
            }
            // Somebody else is dialing; bounded park so a dead
            // reconnector (aborted process) cannot strand us forever.
            if let Some(d) = deadline {
                if self.rt.now() >= d {
                    return Err(AlpsError::Timeout {
                        what: self.object.clone(),
                        ticks: 0,
                    });
                }
                self.notifier.wait_past_deadline(&self.rt, seen, d);
            } else {
                let bound = self
                    .rt
                    .now()
                    .saturating_add(self.reconnect.cap_ticks.max(1_000));
                self.notifier.wait_past_deadline(&self.rt, seen, bound);
            }
        }
    }

    /// Dial + handshake with seeded-jitter exponential backoff. Runs
    /// with the connection in `Connecting` (never holding the lock
    /// across blocking work); always resolves the state before
    /// returning.
    #[allow(clippy::type_complexity)]
    fn reconnect_episode(
        self: &Arc<Self>,
        deadline: Option<u64>,
    ) -> Result<(u64, Arc<dyn Link>, Arc<HashMap<String, u32>>)> {
        let attempts = self.reconnect.max_attempts.max(1);
        let mut outcome = Err(self.link_lost());
        for k in 0..attempts {
            if deadline.is_some_and(|d| self.rt.now() >= d) {
                outcome = Err(AlpsError::Timeout {
                    what: self.object.clone(),
                    ticks: 0,
                });
                break;
            }
            match self.dial_once() {
                Ok(up) => {
                    outcome = Ok(up);
                    break;
                }
                Err(DialError::Refused(e)) => {
                    // The server answered and said no (unknown object,
                    // version skew): retrying cannot help.
                    outcome = Err(e);
                    break;
                }
                Err(DialError::Io) => {
                    if k + 1 == attempts {
                        break;
                    }
                    let d = self
                        .reconnect
                        .base_ticks
                        .checked_shl(k)
                        .unwrap_or(u64::MAX)
                        .min(self.reconnect.cap_ticks);
                    let lo = d / 2;
                    let jittered = lo
                        + if d > lo {
                            self.rt.rand_u64() % (d - lo + 1)
                        } else {
                            0
                        };
                    self.rt.sleep(jittered.max(1));
                }
            }
        }
        let mut conn = self.conn.lock();
        match &outcome {
            Ok((epoch, link, entries)) => {
                *conn = Conn::Up {
                    epoch: *epoch,
                    link: Arc::clone(link),
                    entries: Arc::clone(entries),
                };
            }
            Err(_) => *conn = Conn::Down,
        }
        drop(conn);
        self.notifier.notify(&self.rt);
        outcome
    }

    /// One dial + handshake. The handshake runs on the *raw* link
    /// (fault injection starts at steady state — see
    /// [`RemoteHandle::with_fault`]); the reader daemon is spawned on
    /// the possibly-faulty wrapped link.
    #[allow(clippy::type_complexity)]
    fn dial_once(
        self: &Arc<Self>,
    ) -> std::result::Result<(u64, Arc<dyn Link>, Arc<HashMap<String, u32>>), DialError> {
        let raw = self.connector.connect().map_err(|_| DialError::Io)?;
        let hello = encode_frame(&Frame::Hello {
            version: PROTO_VERSION,
            session: self.session,
            object: self.object.clone(),
        })
        .expect("hello frames always encode");
        raw.send(&hello).map_err(|_| DialError::Io)?;
        let ack = raw.recv().map_err(|_| DialError::Io)?;
        let entries = match decode_frame(&ack) {
            Ok((Frame::HelloAck { entries }, _)) => entries,
            Ok((Frame::HelloErr { err }, _)) => {
                return Err(DialError::Refused(wire_to_err(&err)));
            }
            _ => return Err(DialError::Io),
        };
        let table: Arc<HashMap<String, u32>> = Arc::new(entries.into_iter().collect());
        let link: Arc<dyn Link> = match &self.fault {
            Some(fault) => {
                fault.revive();
                Arc::new(FaultyLink::new(&self.rt, raw, Arc::clone(fault)))
            }
            None => raw,
        };
        let epoch = self.conn_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.stats.reconnects.incr();
        let reader = Arc::clone(self);
        let rlink = Arc::clone(&link);
        self.rt.spawn_with(
            Spawn::new(format!("net.reader.{epoch}")).daemon(true),
            move || reader.read_loop(epoch, rlink),
        );
        Ok((epoch, link, table))
    }

    /// Per-connection reader: fills reply slots until the link dies,
    /// then sweeps every still-empty slot with `LinkLost` — an in-flight
    /// call never hangs on a connection that no longer exists.
    fn read_loop(self: Arc<Self>, epoch: u64, link: Arc<dyn Link>) {
        while let Ok(bytes) = link.recv() {
            match decode_frame(&bytes) {
                Ok((Frame::Reply { call, result }, _)) => {
                    let mapped = result.map_err(|w| wire_to_err(&w));
                    if let Some(slot) = self.pending.lock().get(&call).cloned() {
                        let mut r = slot.result.lock();
                        // First writer wins: a duplicated reply frame (or
                        // a replay racing the original) must not clobber
                        // a result the caller is about to read.
                        if r.is_none() {
                            *r = Some(mapped);
                        }
                    }
                    // Unknown call id: a reply for a caller that already
                    // timed out and left. Dropped on the floor by design.
                    self.notifier.notify(&self.rt);
                }
                Ok(_) => break,  // protocol breach
                Err(_) => break, // corruption: the stream is untrustworthy
            }
        }
        self.mark_down(epoch, &link);
    }

    /// Move the connection to `Down` (if `epoch` is still current) and
    /// sweep in-flight calls with `LinkLost`.
    fn mark_down(&self, epoch: u64, link: &Arc<dyn Link>) {
        link.shutdown();
        {
            let mut conn = self.conn.lock();
            if matches!(&*conn, Conn::Up { epoch: e, .. } if *e == epoch) {
                *conn = Conn::Down;
            }
        }
        let mut lost = 0u64;
        {
            let pending = self.pending.lock();
            for slot in pending.values() {
                let mut r = slot.result.lock();
                if r.is_none() {
                    *r = Some(Err(self.link_lost()));
                    lost += 1;
                }
            }
        }
        if lost > 0 {
            self.stats.link_losses.add(lost);
        }
        self.notifier.notify(&self.rt);
    }
}

enum DialError {
    /// Transport failure: worth backing off and retrying.
    Io,
    /// The server refused the handshake: terminal.
    Refused(AlpsError),
}

/// A set of [`RemoteHandle`]s routed by key — the cross-process analogue
/// of [`ShardedHandle`](alps_core::ShardedHandle), using the same
/// [`spread`]/[`hash_values`] routing so a sharded object can be split
/// across processes without changing which shard owns which key.
pub struct RemoteGroup {
    handles: Vec<RemoteHandle>,
}

impl RemoteGroup {
    /// Group over `handles` (one per remote shard, in shard order).
    ///
    /// # Panics
    ///
    /// When `handles` is empty.
    pub fn new(handles: Vec<RemoteHandle>) -> RemoteGroup {
        assert!(
            !handles.is_empty(),
            "a RemoteGroup needs at least one handle"
        );
        RemoteGroup { handles }
    }

    /// Number of remote shards.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the group is empty (never true — construction requires
    /// at least one handle).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The handle that owns `key`.
    pub fn shard_for(&self, key: u64) -> &RemoteHandle {
        &self.handles[spread(key, self.handles.len())]
    }

    /// Route by explicit key.
    ///
    /// # Errors
    ///
    /// As [`RemoteHandle::call`].
    pub fn call_key(&self, key: u64, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        self.shard_for(key).call(entry, args)
    }

    /// Route by explicit key with retry.
    ///
    /// # Errors
    ///
    /// As [`RemoteHandle::call_retry`].
    pub fn call_key_retry(
        &self,
        key: u64,
        entry: &str,
        args: Vec<Value>,
        policy: RetryPolicy,
    ) -> Result<Vec<Value>> {
        self.shard_for(key).call_retry(entry, args, policy)
    }

    /// Route by hashing the argument values (the same hash the
    /// in-process sharded router uses).
    ///
    /// # Errors
    ///
    /// As [`RemoteHandle::call`].
    pub fn call(&self, entry: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        self.call_key(hash_values(&args), entry, args)
    }

    /// Summed counters across the group's handles.
    pub fn stats(&self) -> RemoteStats {
        let total = RemoteStats::default();
        for h in &self.handles {
            total.absorb(&h.stats());
        }
        total
    }
}
