//! Network-transparent ALPS objects, with **partial failure** as the
//! headline concern.
//!
//! The paper's objects synchronize through manager processes inside one
//! address space. This crate carries the same call protocol across a
//! process boundary:
//!
//! * [`wire`] — length-prefixed, checksummed frames serializing
//!   [`ValVec`](alps_core::ValVec) calls and replies, with an
//!   entry-table handshake that interns entry ids per connection and a
//!   wire image of the [`AlpsError`](alps_core::AlpsError) taxonomy.
//! * [`link`] — transports: TCP, Unix sockets, and an in-memory channel
//!   pair ([`MemLink`]) that runs the whole protocol inside one
//!   deterministic simulation.
//! * [`server`] — [`NetServer`] exposes a runtime's objects over any
//!   link, with per-session duplicate suppression making every call
//!   **at-most-once-executed** no matter how the transport misbehaves.
//! * [`client`] — [`RemoteHandle`] speaks the `ObjectHandle` call
//!   surface remotely, supervising its connection (seeded-backoff
//!   reconnect) and sweeping in-flight calls with
//!   [`AlpsError::LinkLost`](alps_core::AlpsError::LinkLost) when the
//!   link dies — a *transient* error, safe to retry precisely because
//!   of the server's dedup.
//! * [`fault`] — [`NetFaultPlan`] extends deterministic fault injection
//!   to the transport: seeded drops, delays, duplicates, corruption,
//!   and disconnects at the send/receive points, sweepable across 256
//!   seeds like every other failure in this workspace.

#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod link;
pub mod server;
pub mod wire;

#[cfg(unix)]
pub use client::UnixConnector;
pub use client::{
    Connector, MemConnector, ReconnectPolicy, RemoteEntryId, RemoteGroup, RemoteHandle,
    RemoteStats, TcpConnector,
};
pub use fault::{NetFault, NetFaultPlan, RecvPlan, SendPlan};
#[cfg(unix)]
pub use link::UnixLink;
pub use link::{FaultyLink, Link, MemLink, TcpLink};
pub use server::{NetServer, ServerStats};
pub use wire::{
    decode_frame, encode_frame, err_to_wire, wire_to_err, Frame, FrameError, WireErr, MAX_FRAME,
    NO_BUDGET, PROTO_VERSION,
};
