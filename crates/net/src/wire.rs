//! The ALPS wire protocol: length-prefixed, checksummed frames carrying
//! handshakes, calls, and replies between processes.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 le] [crc: u32 le] [body: len bytes]
//! body = [kind: u8] [payload…]
//! ```
//!
//! `len` counts only the body; `crc` is FNV-1a over the body. The
//! checksum is the partial-failure defence for the *corrupt* transport
//! fault: a flipped payload byte fails the checksum and the whole link is
//! torn down — a frame is never delivered to the wrong call id, because a
//! frame with a damaged correlation id never decodes at all.
//!
//! # Frames
//!
//! | kind | frame | payload |
//! |------|-------|---------|
//! | 1 | `Hello` | version u16, session u64, object name |
//! | 2 | `HelloAck` | entry table: (name, entry index) pairs |
//! | 3 | `HelloErr` | a [`WireErr`] |
//! | 4 | `Call` | call id u64, ack_below u64, entry u32, budget u64, args |
//! | 5 | `Reply` | call id u64, ok flag, results **or** [`WireErr`] |
//!
//! The handshake interns [`EntryId`](alps_core::EntryId)s once per
//! connection: `HelloAck` carries the server's `(name → index)` table, so
//! a steady-state `Call` frame names its entry with a bare `u32` — the
//! wire analogue of [`ObjectHandle::entry_id`](alps_core::ObjectHandle::entry_id).
//!
//! Deadlines cross the boundary as *remaining budgets*, never absolute
//! ticks: the two processes do not share a clock, so the client computes
//! `deadline - now` at send time and the server re-anchors the budget on
//! its own clock (`budget == u64::MAX` means "no deadline").
//!
//! # Robustness contract
//!
//! [`decode_frame`] is total: any byte string either decodes to a frame
//! or returns a [`FrameError`] — it never panics and never reads out of
//! bounds, which the seeded corruption test (`tests/wire_corruption.rs`)
//! pins by flipping and truncating valid frames.

use std::fmt;

use alps_core::{AlpsError, ValVec, Value};

/// Protocol version carried in `Hello`; bumped on incompatible change.
pub const PROTO_VERSION: u16 = 1;

/// Frame header length: `len` + `crc`.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame body. A corrupted length field therefore
/// cannot make a reader allocate or wait for gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Budget value meaning "no deadline".
pub const NO_BUDGET: u64 = u64::MAX;

const MAX_STR: usize = 1 << 16;
const MAX_VALS: usize = 1 << 16;
const MAX_DEPTH: usize = 16;

/// FNV-1a over the frame body — cheap, dependency-free corruption
/// detection (not cryptographic; the threat model is bit rot and fault
/// injection, not an adversary).
pub fn checksum(body: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in body {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Decode failure. Every variant is a *clean* error: the decoder never
/// panics, and a failed frame tears the link down rather than guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header (or its declared length) promises.
    Truncated,
    /// Declared body length exceeds [`MAX_FRAME`].
    Oversize {
        /// The declared body length.
        len: usize,
    },
    /// Body checksum mismatch — the frame was corrupted in flight.
    Checksum {
        /// Checksum the header carried.
        expected: u32,
        /// Checksum recomputed over the received body.
        got: u32,
    },
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Unknown value tag byte inside a payload.
    UnknownTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A list nested deeper than the decoder's recursion bound.
    TooDeep,
    /// A count field exceeded its sanity bound.
    TooMany {
        /// The declared element count.
        count: usize,
    },
    /// The body decoded but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The peer speaks a different protocol version.
    BadVersion {
        /// Version the peer announced.
        got: u16,
    },
    /// The value cannot cross the wire (first-class channels are
    /// process-local capabilities).
    Unsupported(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversize { len } => {
                write!(f, "declared frame length {len} exceeds cap {MAX_FRAME}")
            }
            FrameError::Checksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#x}, body {got:#x}"
                )
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::UnknownTag(t) => write!(f, "unknown value tag {t}"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::TooDeep => write!(f, "value nests deeper than {MAX_DEPTH}"),
            FrameError::TooMany { count } => write!(f, "count field {count} exceeds sanity bound"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "frame decoded with {extra} trailing byte(s)")
            }
            FrameError::BadVersion { got } => {
                write!(
                    f,
                    "peer speaks protocol version {got}, this side {PROTO_VERSION}"
                )
            }
            FrameError::Unsupported(what) => write!(f, "cannot serialize {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A serializable error: the wire image of the [`AlpsError`] taxonomy the
/// server propagates to remote callers ([`err_to_wire`]/[`wire_to_err`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireErr {
    /// Variant code (see `err_to_wire`).
    pub code: u8,
    /// First string field (object, entry, or message — variant-specific).
    pub a: String,
    /// Second string field.
    pub b: String,
    /// Numeric field (ticks, arity, …).
    pub aux: u64,
}

const E_CUSTOM: u8 = 0;
const E_OPAQUE: u8 = 1;
const E_OVERLOADED: u8 = 2;
const E_RESTARTING: u8 = 3;
const E_POISONED: u8 = 4;
const E_CLOSED: u8 = 5;
const E_TIMEOUT: u8 = 6;
const E_CANCELLED: u8 = 7;
const E_BODY_FAILED: u8 = 8;
const E_UNKNOWN_ENTRY: u8 = 9;
const E_LOCAL_ENTRY: u8 = 10;
const E_ARITY: u8 = 11;

/// Map a server-side error onto its wire image. The transient taxonomy
/// the retry machinery depends on — `Overloaded`, `ObjectRestarting`,
/// `Timeout`, plus the terminal `ObjectPoisoned` — survives the crossing
/// exactly; variants with no remote meaning collapse to an opaque
/// rendering of their `Display` form.
pub fn err_to_wire(e: &AlpsError) -> WireErr {
    let w = |code: u8, a: &str, b: &str, aux: u64| WireErr {
        code,
        a: a.to_string(),
        b: b.to_string(),
        aux,
    };
    match e {
        AlpsError::Overloaded { object } => w(E_OVERLOADED, object, "", 0),
        AlpsError::ObjectRestarting { object } => w(E_RESTARTING, object, "", 0),
        AlpsError::ObjectPoisoned { object } => w(E_POISONED, object, "", 0),
        AlpsError::ObjectClosed { object } => w(E_CLOSED, object, "", 0),
        AlpsError::Timeout { what, ticks } => w(E_TIMEOUT, what, "", *ticks),
        AlpsError::Cancelled { entry } => w(E_CANCELLED, entry, "", 0),
        AlpsError::BodyFailed { entry, message } => w(E_BODY_FAILED, entry, message, 0),
        AlpsError::UnknownEntry { object, entry } => w(E_UNKNOWN_ENTRY, object, entry, 0),
        AlpsError::LocalEntryCalled { object, entry } => w(E_LOCAL_ENTRY, object, entry, 0),
        AlpsError::ArityMismatch {
            what,
            expected,
            got,
        } => w(
            E_ARITY,
            what,
            "",
            ((*expected as u64) << 32) | (*got as u64 & 0xffff_ffff),
        ),
        AlpsError::Custom(msg) => w(E_CUSTOM, msg, "", 0),
        other => w(E_OPAQUE, &other.to_string(), "", 0),
    }
}

/// Inverse of [`err_to_wire`]. Unknown codes decode to
/// [`AlpsError::Custom`] — a forward-compatible failure, never a panic.
pub fn wire_to_err(w: &WireErr) -> AlpsError {
    match w.code {
        E_OVERLOADED => AlpsError::Overloaded {
            object: w.a.clone(),
        },
        E_RESTARTING => AlpsError::ObjectRestarting {
            object: w.a.clone(),
        },
        E_POISONED => AlpsError::ObjectPoisoned {
            object: w.a.clone(),
        },
        E_CLOSED => AlpsError::ObjectClosed {
            object: w.a.clone(),
        },
        E_TIMEOUT => AlpsError::Timeout {
            what: w.a.clone(),
            ticks: w.aux,
        },
        E_CANCELLED => AlpsError::Cancelled { entry: w.a.clone() },
        E_BODY_FAILED => AlpsError::BodyFailed {
            entry: w.a.clone(),
            message: w.b.clone(),
        },
        E_UNKNOWN_ENTRY => AlpsError::UnknownEntry {
            object: w.a.clone(),
            entry: w.b.clone(),
        },
        E_LOCAL_ENTRY => AlpsError::LocalEntryCalled {
            object: w.a.clone(),
            entry: w.b.clone(),
        },
        E_ARITY => AlpsError::ArityMismatch {
            what: w.a.clone(),
            expected: (w.aux >> 32) as usize,
            got: (w.aux & 0xffff_ffff) as usize,
        },
        E_CUSTOM => AlpsError::Custom(w.a.clone()),
        _ => AlpsError::Custom(format!("remote error: {}", w.a)),
    }
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server connection opener. `session` identifies the
    /// logical client across reconnects: the server keys its
    /// duplicate-suppression cache on it, so a call retried over a fresh
    /// connection is still at-most-once-executed.
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        version: u16,
        /// Client-chosen session id, stable across reconnects.
        session: u64,
        /// Name of the object the client wants to call.
        object: String,
    },
    /// Server → client handshake acceptance: the object's entry table.
    HelloAck {
        /// `(entry name, wire entry index)` pairs.
        entries: Vec<(String, u32)>,
    },
    /// Server → client handshake refusal (unknown object, bad version).
    HelloErr {
        /// Why the handshake failed.
        err: WireErr,
    },
    /// Client → server call. `call` correlates the eventual reply;
    /// `ack_below` tells the server every call id below it is resolved
    /// client-side, licensing reply-cache pruning.
    Call {
        /// Correlation id, unique per session.
        call: u64,
        /// All call ids `< ack_below` are resolved; the server may drop
        /// their cached replies.
        ack_below: u64,
        /// Wire entry index from the `HelloAck` table.
        entry: u32,
        /// Remaining deadline budget in ticks ([`NO_BUDGET`] = none).
        budget: u64,
        /// Call arguments.
        args: ValVec,
    },
    /// Server → client reply, correlated by call id.
    Reply {
        /// The `Call` frame's correlation id.
        call: u64,
        /// Results, or the server-side error.
        result: Result<ValVec, WireErr>,
    },
}

const K_HELLO: u8 = 1;
const K_HELLO_ACK: u8 = 2;
const K_HELLO_ERR: u8 = 3;
const K_CALL: u8 = 4;
const K_REPLY: u8 = 5;

// ---------------------------------------------------------------- encode

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) -> Result<(), FrameError> {
        if s.len() > MAX_STR {
            return Err(FrameError::TooMany { count: s.len() });
        }
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
    fn value(&mut self, v: &Value, depth: usize) -> Result<(), FrameError> {
        if depth > MAX_DEPTH {
            return Err(FrameError::TooDeep);
        }
        match v {
            Value::Unit => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(u8::from(*b));
            }
            Value::Int(i) => {
                self.u8(2);
                self.u64(*i as u64);
            }
            Value::Float(x) => {
                self.u8(3);
                self.u64(x.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s)?;
            }
            Value::List(xs) => {
                if xs.len() > MAX_VALS {
                    return Err(FrameError::TooMany { count: xs.len() });
                }
                self.u8(5);
                self.u32(xs.len() as u32);
                for x in xs {
                    self.value(x, depth + 1)?;
                }
            }
            Value::Chan(_) => {
                // A channel is a process-local capability (its queue lives
                // in this runtime); there is nothing meaningful to send.
                return Err(FrameError::Unsupported("a first-class channel value"));
            }
        }
        Ok(())
    }
    fn vals(&mut self, vs: &ValVec) -> Result<(), FrameError> {
        let s = vs.as_slice();
        if s.len() > MAX_VALS {
            return Err(FrameError::TooMany { count: s.len() });
        }
        self.u32(s.len() as u32);
        for v in s {
            self.value(v, 0)?;
        }
        Ok(())
    }
    fn err(&mut self, e: &WireErr) -> Result<(), FrameError> {
        self.u8(e.code);
        self.str(&e.a)?;
        self.str(&e.b)?;
        self.u64(e.aux);
        Ok(())
    }
}

/// Encode a frame to its full on-wire byte image (header + body).
///
/// # Errors
///
/// [`FrameError::Unsupported`] when a value cannot cross the wire (a
/// first-class channel), [`FrameError::TooMany`]/[`FrameError::TooDeep`]
/// when a payload exceeds the decoder's sanity bounds (so the peer would
/// reject it anyway).
pub fn encode_frame(f: &Frame) -> Result<Vec<u8>, FrameError> {
    let mut e = Enc { buf: Vec::new() };
    match f {
        Frame::Hello {
            version,
            session,
            object,
        } => {
            e.u8(K_HELLO);
            e.u16(*version);
            e.u64(*session);
            e.str(object)?;
        }
        Frame::HelloAck { entries } => {
            if entries.len() > MAX_VALS {
                return Err(FrameError::TooMany {
                    count: entries.len(),
                });
            }
            e.u8(K_HELLO_ACK);
            e.u32(entries.len() as u32);
            for (name, idx) in entries {
                e.str(name)?;
                e.u32(*idx);
            }
        }
        Frame::HelloErr { err } => {
            e.u8(K_HELLO_ERR);
            e.err(err)?;
        }
        Frame::Call {
            call,
            ack_below,
            entry,
            budget,
            args,
        } => {
            e.u8(K_CALL);
            e.u64(*call);
            e.u64(*ack_below);
            e.u32(*entry);
            e.u64(*budget);
            e.vals(args)?;
        }
        Frame::Reply { call, result } => {
            e.u8(K_REPLY);
            e.u64(*call);
            match result {
                Ok(vals) => {
                    e.u8(1);
                    e.vals(vals)?;
                }
                Err(err) => {
                    e.u8(0);
                    e.err(err)?;
                }
            }
        }
    }
    let body = e.buf;
    debug_assert!(body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn str(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        if n > MAX_STR {
            return Err(FrameError::TooMany { count: n });
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| FrameError::BadUtf8)
    }
    fn value(&mut self, depth: usize) -> Result<Value, FrameError> {
        if depth > MAX_DEPTH {
            return Err(FrameError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(self.u64()? as i64)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::str(self.str()?)),
            5 => {
                let n = self.u32()? as usize;
                if n > MAX_VALS {
                    return Err(FrameError::TooMany { count: n });
                }
                // Cap pre-allocation by what the buffer could possibly
                // hold (1 byte per value minimum): a corrupt count can
                // not force a huge allocation before Truncated fires.
                let mut xs = Vec::with_capacity(n.min(self.buf.len() - self.pos));
                for _ in 0..n {
                    xs.push(self.value(depth + 1)?);
                }
                Ok(Value::List(xs))
            }
            t => Err(FrameError::UnknownTag(t)),
        }
    }
    fn vals(&mut self) -> Result<ValVec, FrameError> {
        let n = self.u32()? as usize;
        if n > MAX_VALS {
            return Err(FrameError::TooMany { count: n });
        }
        let mut out = ValVec::new();
        for _ in 0..n {
            out.push(self.value(0)?);
        }
        Ok(out)
    }
    fn err(&mut self) -> Result<WireErr, FrameError> {
        Ok(WireErr {
            code: self.u8()?,
            a: self.str()?,
            b: self.str()?,
            aux: self.u64()?,
        })
    }
}

/// Decode one frame from the **front** of `bytes` (which must contain the
/// complete frame — links deliver whole frames). Returns the frame and
/// the number of bytes consumed.
///
/// Total: every possible byte string returns either a frame or a
/// [`FrameError`]; the decoder never panics, never over-reads, and a
/// body whose checksum fails is rejected before any field is interpreted
/// — a corrupted correlation id can therefore never misdeliver a reply.
///
/// # Errors
///
/// See [`FrameError`].
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize { len });
    }
    let expected = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let total = HEADER_LEN + len;
    if bytes.len() < total {
        return Err(FrameError::Truncated);
    }
    let body = &bytes[HEADER_LEN..total];
    let got = checksum(body);
    if got != expected {
        return Err(FrameError::Checksum { expected, got });
    }
    let mut d = Dec { buf: body, pos: 0 };
    let frame = match d.u8()? {
        K_HELLO => Frame::Hello {
            version: d.u16()?,
            session: d.u64()?,
            object: d.str()?,
        },
        K_HELLO_ACK => {
            let n = d.u32()? as usize;
            if n > MAX_VALS {
                return Err(FrameError::TooMany { count: n });
            }
            let mut entries = Vec::with_capacity(n.min(body.len()));
            for _ in 0..n {
                let name = d.str()?;
                let idx = d.u32()?;
                entries.push((name, idx));
            }
            Frame::HelloAck { entries }
        }
        K_HELLO_ERR => Frame::HelloErr { err: d.err()? },
        K_CALL => Frame::Call {
            call: d.u64()?,
            ack_below: d.u64()?,
            entry: d.u32()?,
            budget: d.u64()?,
            args: d.vals()?,
        },
        K_REPLY => {
            let call = d.u64()?;
            let ok = d.u8()?;
            let result = if ok != 0 {
                Ok(d.vals()?)
            } else {
                Err(d.err()?)
            };
            Frame::Reply { call, result }
        }
        k => return Err(FrameError::UnknownKind(k)),
    };
    if d.pos != body.len() {
        return Err(FrameError::TrailingBytes {
            extra: body.len() - d.pos,
        });
    }
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_core::vals;

    fn roundtrip(f: Frame) {
        let bytes = encode_frame(&f).unwrap();
        let (back, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: PROTO_VERSION,
            session: 0xdead_beef,
            object: "Counter".into(),
        });
        roundtrip(Frame::HelloAck {
            entries: vec![("Bump".into(), 0), ("Get".into(), 1)],
        });
        roundtrip(Frame::HelloErr {
            err: err_to_wire(&AlpsError::Custom("no such object".into())),
        });
        roundtrip(Frame::Call {
            call: 42,
            ack_below: 40,
            entry: 1,
            budget: NO_BUDGET,
            args: ValVec::from(vals![7i64, "key", 2.5f64, true]),
        });
        roundtrip(Frame::Reply {
            call: 42,
            result: Ok(ValVec::from(vals![Value::List(vals![1i64, 2i64])])),
        });
        roundtrip(Frame::Reply {
            call: 43,
            result: Err(err_to_wire(&AlpsError::Overloaded {
                object: "Counter".into(),
            })),
        });
    }

    #[test]
    fn error_taxonomy_survives_the_crossing() {
        let cases = vec![
            AlpsError::Overloaded { object: "X".into() },
            AlpsError::ObjectRestarting { object: "X".into() },
            AlpsError::ObjectPoisoned { object: "X".into() },
            AlpsError::ObjectClosed { object: "X".into() },
            AlpsError::Timeout {
                what: "P".into(),
                ticks: 500,
            },
            AlpsError::Cancelled { entry: "P".into() },
            AlpsError::BodyFailed {
                entry: "P".into(),
                message: "boom".into(),
            },
            AlpsError::UnknownEntry {
                object: "X".into(),
                entry: "Q".into(),
            },
            AlpsError::LocalEntryCalled {
                object: "X".into(),
                entry: "L".into(),
            },
            AlpsError::ArityMismatch {
                what: "P".into(),
                expected: 2,
                got: 3,
            },
            AlpsError::Custom("app error".into()),
        ];
        for e in cases {
            let back = wire_to_err(&err_to_wire(&e));
            assert_eq!(back, e, "taxonomy drifted for {e}");
            assert_eq!(
                back.is_retryable(),
                e.is_retryable(),
                "retryability must survive the wire for {e}"
            );
        }
    }

    #[test]
    fn opaque_variants_collapse_to_custom() {
        let e = AlpsError::SelectFailed;
        let back = wire_to_err(&err_to_wire(&e));
        assert!(matches!(back, AlpsError::Custom(_)));
        assert!(!back.is_retryable());
    }

    #[test]
    fn channels_refuse_to_cross() {
        use alps_core::{ChanValue, Ty};
        let f = Frame::Call {
            call: 1,
            ack_below: 0,
            entry: 0,
            budget: NO_BUDGET,
            args: ValVec::from(vec![Value::Chan(ChanValue::new("c", vec![Ty::Int]))]),
        };
        assert_eq!(
            encode_frame(&f),
            Err(FrameError::Unsupported("a first-class channel value"))
        );
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let bytes = encode_frame(&Frame::Reply {
            call: 7,
            result: Ok(ValVec::from(vals![1i64])),
        })
        .unwrap();
        for i in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            match decode_frame(&bad) {
                Err(FrameError::Checksum { .. }) => {}
                other => panic!("flip at {i} produced {other:?}, not a checksum error"),
            }
        }
    }

    #[test]
    fn truncation_is_clean() {
        let bytes = encode_frame(&Frame::Hello {
            version: PROTO_VERSION,
            session: 1,
            object: "X".into(),
        })
        .unwrap();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated) => {}
                other => panic!("cut at {cut} produced {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // A valid Hello body with one extra byte appended, checksummed so
        // the corruption is structural, not bit-level.
        let inner = encode_frame(&Frame::Hello {
            version: PROTO_VERSION,
            session: 1,
            object: "X".into(),
        })
        .unwrap();
        let mut body = inner[HEADER_LEN..].to_vec();
        body.push(0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&checksum(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }
}
