//! End-to-end remote calls: handshake, error propagation, deadlines,
//! duplicate suppression, and reconnect-after-disconnect — mostly on the
//! deterministic simulation runtime (the whole wire protocol runs over
//! in-memory [`MemLink`](alps_net::MemLink) channel pairs), plus one
//! real-TCP loopback round trip on the threaded runtime.

use std::collections::HashMap;
use std::sync::Arc;

use alps_core::{
    vals, AlpsError, Backoff, EntryDef, ObjectBuilder, ObjectHandle, RestartPolicy, RetryPolicy,
    Ty, Value,
};
use alps_net::{NetFaultPlan, NetServer, ReconnectPolicy, RemoteHandle, TcpConnector};
use alps_runtime::{Runtime, SimRuntime, Spawn};
use parking_lot::Mutex;

/// A counting object: `Bump(k)` increments `k`'s tally and returns it;
/// `Count(k)` reads it. The tallies live *outside* the object so tests
/// can assert exactly-once execution directly.
fn counter(rt: &Runtime, counts: &Arc<Mutex<HashMap<i64, i64>>>) -> ObjectHandle {
    let (c_bump, c_read) = (Arc::clone(counts), Arc::clone(counts));
    ObjectBuilder::new("Counter")
        .entry(
            EntryDef::new("Bump")
                .params([Ty::Int])
                .results([Ty::Int])
                .body(move |_ctx, args| {
                    let k = args[0].as_int()?;
                    let mut m = c_bump.lock();
                    let n = m.entry(k).or_insert(0);
                    *n += 1;
                    Ok(vec![Value::Int(*n)])
                }),
        )
        .entry(
            EntryDef::new("Count")
                .params([Ty::Int])
                .results([Ty::Int])
                .body(move |_ctx, args| {
                    let k = args[0].as_int()?;
                    Ok(vec![Value::Int(
                        c_read.lock().get(&k).copied().unwrap_or(0),
                    )])
                }),
        )
        .spawn(rt)
        .unwrap()
}

/// Plain round trip under the sim: interned ids, deadline form, and the
/// remote error for an entry the server does not export.
#[test]
fn sim_round_trip_and_unknown_entry() {
    SimRuntime::new()
        .run(|rt| {
            let counts = Arc::new(Mutex::new(HashMap::new()));
            let obj = counter(rt, &counts);
            let server = NetServer::new(rt);
            server.register(&obj);
            let client = RemoteHandle::new(rt, "Counter", server.mem_connector());

            let bump = client.entry_id("Bump");
            for i in 1..=5i64 {
                let r = client.call_id(&bump, vals![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(i));
            }
            let r = client.call_deadline("Count", vals![7i64], 50_000).unwrap();
            assert_eq!(r[0], Value::Int(5));

            let err = client.call("Nope", vals![1i64]).unwrap_err();
            assert!(
                matches!(&err, AlpsError::UnknownEntry { object, entry }
                    if object == "Counter" && entry == "Nope"),
                "{err:?}"
            );
            assert_eq!(client.stats().replies.get(), 6);
        })
        .unwrap();
}

/// Dialing an object the server never registered fails the handshake
/// with a terminal error — no retry storm, no hang.
#[test]
fn unknown_object_is_refused_at_handshake() {
    SimRuntime::new()
        .run(|rt| {
            let server = NetServer::new(rt);
            let client = RemoteHandle::new(rt, "Ghost", server.mem_connector());
            let err = client.call("P", vals![1i64]).unwrap_err();
            assert!(
                matches!(&err, AlpsError::Custom(m) if m.contains("Ghost")),
                "{err:?}"
            );
        })
        .unwrap();
}

/// The server propagates its error taxonomy over the wire: the remote
/// caller sees the *same* variant an in-process caller would.
#[test]
fn errors_cross_the_wire_as_themselves() {
    SimRuntime::new()
        .run(|rt| {
            let obj = ObjectBuilder::new("Faulty")
                .entry(EntryDef::new("Fail").params([]).results([]).body(
                    |_ctx, _args| -> alps_core::Result<Vec<Value>> {
                        Err(AlpsError::Custom("application said no".into()))
                    },
                ))
                .entry(
                    EntryDef::new("Boom")
                        .params([])
                        .results([])
                        .body(|_ctx, _args| -> alps_core::Result<Vec<Value>> { panic!("kaboom") }),
                )
                .poison_on_panic(true)
                .spawn(rt)
                .unwrap();
            let server = NetServer::new(rt);
            server.register(&obj);
            let client = RemoteHandle::new(rt, "Faulty", server.mem_connector());

            let local = obj.call("Fail", vals![]).unwrap_err();
            let remote = client.call("Fail", vals![]).unwrap_err();
            assert_eq!(remote, local, "delivered errors must match in-process form");

            // Poison the object, then observe ObjectPoisoned remotely.
            let _ = client.call("Boom", vals![]);
            let err = client.call("Fail", vals![]).unwrap_err();
            assert!(matches!(err, AlpsError::ObjectPoisoned { .. }), "{err:?}");
        })
        .unwrap();
}

/// Every `Call` frame duplicated in flight (`dup = 1.0`): the server's
/// session dedup must make execution exactly-once anyway.
#[test]
fn duplicated_frames_execute_at_most_once() {
    SimRuntime::new()
        .run(|rt| {
            let counts = Arc::new(Mutex::new(HashMap::new()));
            let obj = counter(rt, &counts);
            let server = NetServer::new(rt);
            server.register(&obj);
            let mut plan = NetFaultPlan::seeded(99);
            plan.dup_rate = 1.0;
            let client = RemoteHandle::new(rt, "Counter", server.mem_connector()).with_fault(plan);

            for k in 0..10i64 {
                let r = client.call("Bump", vals![k]).unwrap();
                assert_eq!(r[0], Value::Int(1), "key {k} executed more than once");
            }
            let m = counts.lock();
            for k in 0..10i64 {
                assert_eq!(m.get(&k), Some(&1), "key {k} tally");
            }
            drop(m);
            let s = server.stats();
            assert_eq!(s.executed.get(), 10);
            assert!(
                s.suppressed.get() + s.replayed.get() >= 1,
                "duplicates must have reached the dedup layer (suppressed={} replayed={})",
                s.suppressed.get(),
                s.replayed.get()
            );
        })
        .unwrap();
}

/// Forced disconnects every few sends: callers see clean transient
/// errors (`LinkLost`), `call_retry` rides through them over fresh
/// connections, and dedup keeps every key's tally at exactly one.
#[test]
fn retry_rides_through_forced_disconnects() {
    SimRuntime::new()
        .run(|rt| {
            let counts = Arc::new(Mutex::new(HashMap::new()));
            let obj = counter(rt, &counts);
            let server = NetServer::new(rt);
            server.register(&obj);
            let mut plan = NetFaultPlan::seeded(5);
            plan.disconnect_every = 4;
            let client = RemoteHandle::new(rt, "Counter", server.mem_connector())
                .with_fault(plan)
                .with_reconnect(ReconnectPolicy {
                    max_attempts: 6,
                    base_ticks: 20,
                    cap_ticks: 500,
                });
            let policy = RetryPolicy::new(10, 400_000).backoff(Backoff::ExpJitter {
                base: 20,
                cap: 1_000,
            });

            for k in 0..12i64 {
                let r = client.call_retry("Bump", vals![k], policy).unwrap();
                assert_eq!(r[0], Value::Int(1), "key {k}");
            }
            let m = counts.lock();
            for k in 0..12i64 {
                assert_eq!(m.get(&k), Some(&1), "key {k} tally");
            }
            drop(m);
            assert!(
                client.stats().reconnects.get() >= 2,
                "the disconnect schedule must have forced reconnects (got {})",
                client.stats().reconnects.get()
            );
        })
        .unwrap();
}

/// A supervised object restarting under a remote caller: the restart
/// error crosses the wire as `ObjectRestarting`, is not cached (the body
/// never ran), and the retry re-executes to success.
#[test]
fn remote_retry_through_a_supervised_restart() {
    SimRuntime::new()
        .run(|rt| {
            let fired = Arc::new(Mutex::new(false));
            let f = Arc::clone(&fired);
            let obj = ObjectBuilder::new("Flaky")
                .entry(
                    EntryDef::new("Once")
                        .params([])
                        .results([Ty::Int])
                        // Intercepted + managed so the panic kills the
                        // manager and the restart sweep answers with the
                        // transient ObjectRestarting (an implicit inline
                        // body's panic is delivered as BodyFailed — the
                        // body ran, so that one is rightly not retried).
                        .intercepted()
                        .body(move |_ctx, _args| {
                            let mut fired = f.lock();
                            if !*fired {
                                *fired = true;
                                drop(fired);
                                panic!("first-call crash");
                            }
                            Ok(vec![Value::Int(1)])
                        }),
                )
                .manager(|mgr| loop {
                    let acc = mgr.accept("Once")?;
                    mgr.execute(acc)?;
                })
                .supervise(RestartPolicy::RestartTransient {
                    max_restarts: 8,
                    window_ticks: 1_000_000,
                })
                .spawn(rt)
                .unwrap();
            let server = NetServer::new(rt);
            server.register(&obj);
            let client = RemoteHandle::new(rt, "Flaky", server.mem_connector());

            let policy = RetryPolicy::new(8, 400_000).backoff(Backoff::ExpJitter {
                base: 50,
                cap: 2_000,
            });
            let r = client.call_retry("Once", vals![], policy).unwrap();
            assert_eq!(r[0], Value::Int(1));
            assert_eq!(obj.stats().restarts(), 1);
        })
        .unwrap();
}

/// Clones of one handle share the session (and its dedup watermark);
/// concurrent callers from several sim processes all resolve.
#[test]
fn concurrent_callers_share_one_session() {
    SimRuntime::new()
        .run(|rt| {
            let counts = Arc::new(Mutex::new(HashMap::new()));
            let obj = counter(rt, &counts);
            let server = NetServer::new(rt);
            server.register(&obj);
            let client = RemoteHandle::new(rt, "Counter", server.mem_connector());

            let mut joins = Vec::new();
            for c in 0..4i64 {
                let h = client.clone();
                joins.push(rt.spawn_with(Spawn::new(format!("caller{c}")), move || {
                    for i in 0..5i64 {
                        let k = c * 5 + i;
                        let r = h.call("Bump", vals![k]).unwrap();
                        assert_eq!(r[0], Value::Int(1));
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            assert_eq!(counts.lock().len(), 20);
            assert_eq!(server.stats().executed.get(), 20);
        })
        .unwrap();
}

/// Real TCP over loopback on the threaded runtime: the 2-process wire
/// path minus the second process (covered by the bench's self-spawned
/// child and CI's remote-smoke job).
#[test]
fn tcp_loopback_round_trip() {
    let rt = Runtime::threaded();
    let counts = Arc::new(Mutex::new(HashMap::new()));
    let obj = counter(&rt, &counts);
    let server = NetServer::new(&rt);
    server.register(&obj);
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let client = RemoteHandle::new(&rt, "Counter", TcpConnector::new(addr.to_string()));
    let bump = client.entry_id("Bump");
    for i in 1..=8i64 {
        let r = client.call_id(&bump, vals![1i64]).unwrap();
        assert_eq!(r[0], Value::Int(i));
    }
    let r = client
        .call_deadline("Count", vals![1i64], 5_000_000)
        .unwrap();
    assert_eq!(r[0], Value::Int(8));

    server.shutdown();
    obj.shutdown();
}
