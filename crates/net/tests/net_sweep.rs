//! Transport-fault sweep: the full distributed call path — wire
//! protocol over in-memory links, a supervised server object, retrying
//! remote callers — under the strategy-driven schedule explorer AND a
//! per-seed transport fault plan (drops, delays, duplicates, forced
//! disconnects).
//!
//! The invariant pinned across every (seed, strategy) cell is the
//! distributed-objects acceptance contract: **every call resolves
//! exactly once or errors cleanly — zero lost replies, zero double
//! executions** — verified both from ground truth (the tally map the
//! entry bodies write) and over a second, fault-free connection.
//!
//! Runs under the standard sweep env contract (`SIM_SWEEP_SEEDS`,
//! `SIM_STRATEGY`, `SIM_SEED`, `SIM_TRACE`); CI's sim-sweep matrix
//! drives it at 64 seeds per strategy = 256 cells.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use alps_core::{
    vals, Backoff, EntryDef, Guard, ObjectBuilder, RestartPolicy, RetryPolicy, Selected, Ty, Value,
};
use alps_net::{NetFaultPlan, NetServer, ReconnectPolicy, RemoteHandle};
use alps_runtime::explore::sweep_explore;
use alps_runtime::{SimRuntime, Spawn};
use parking_lot::Mutex;

const CALLERS: i64 = 3;
const KEYS_PER_CALLER: i64 = 6;

/// The disconnect-during-call scenario. A supervised counter whose
/// `Bump` panics the *first* time it sees an unlucky key (`k % 17 == 3`)
/// — so restarts, client retries, and server dedup all interlock — is
/// served over a transport whose fault plan is seeded from the sim's
/// deterministic random stream (every sweep seed explores a different
/// fault timing).
fn partial_failure_scenario(sim: SimRuntime) {
    sim.run(|rt| {
        let counts: Arc<Mutex<HashMap<i64, i64>>> = Arc::new(Mutex::new(HashMap::new()));
        let seen: Arc<Mutex<HashSet<i64>>> = Arc::new(Mutex::new(HashSet::new()));
        let (c_bump, c_read, s_bump) = (Arc::clone(&counts), Arc::clone(&counts), seen);
        let obj = ObjectBuilder::new("Counter")
            .entry(
                EntryDef::new("Bump")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    // Intercepted + managed: the injected panic kills
                    // the manager, so the restart sweep answers callers
                    // with the transient ObjectRestarting instead of the
                    // delivered (non-retryable) BodyFailed an implicit
                    // inline body would produce.
                    .intercepted()
                    .body(move |_ctx, args| {
                        let k = args[0].as_int()?;
                        // First sight of an unlucky key: crash BEFORE
                        // recording, so the supervised restart answers
                        // the caller with ObjectRestarting and the
                        // retry's re-execution (key now seen) succeeds.
                        if k % 17 == 3 && s_bump.lock().insert(k) {
                            panic!("injected first-sight crash for key {k}");
                        }
                        let mut m = c_bump.lock();
                        let n = m.entry(k).or_insert(0);
                        *n += 1;
                        Ok(vec![Value::Int(*n)])
                    }),
            )
            .entry(
                EntryDef::new("Count")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |_ctx, args| {
                        let k = args[0].as_int()?;
                        Ok(vec![Value::Int(
                            c_read.lock().get(&k).copied().unwrap_or(0),
                        )])
                    }),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("Bump"), Guard::accept("Count")])? {
                    Selected::Accepted { call, .. } => {
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            })
            .supervise(RestartPolicy::RestartTransient {
                max_restarts: 32,
                window_ticks: 10_000_000,
            })
            .spawn(rt)
            .unwrap();

        let server = NetServer::new(rt);
        server.register(&obj);
        let connector = server.mem_connector();

        // Per-seed fault timing: the plan's decision stream is seeded
        // from the sim's own deterministic RNG, so each sweep seed
        // schedules different drops/disconnects — replayable from the
        // same SIM_SEED.
        let plan = NetFaultPlan::chaos(rt.rand_u64());
        let client = RemoteHandle::new(rt, "Counter", connector.clone())
            .with_fault(plan)
            .with_reconnect(ReconnectPolicy {
                max_attempts: 6,
                base_ticks: 50,
                cap_ticks: 1_000,
            });
        // Generous per-attempt budgets relative to the ≤200-tick fault
        // delays: a server-side deadline expiring mid-body would tombstone
        // a completed execution, the one case where a Timeout retry can
        // legally re-execute.
        let policy = RetryPolicy::new(10, 600_000).backoff(Backoff::ExpJitter {
            base: 50,
            cap: 2_000,
        });

        let outcomes: Arc<Mutex<Vec<(i64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for c in 0..CALLERS {
            let (h, out) = (client.clone(), Arc::clone(&outcomes));
            joins.push(rt.spawn_with(Spawn::new(format!("caller{c}")), move || {
                let bump = h.entry_id("Bump");
                for i in 0..KEYS_PER_CALLER {
                    let k = c * KEYS_PER_CALLER + i;
                    let r = h.call_id_retry(&bump, vals![k], policy);
                    out.lock().push((k, r.is_ok()));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        let outs = outcomes.lock();
        assert_eq!(
            outs.len() as i64,
            CALLERS * KEYS_PER_CALLER,
            "every caller resolved every call (no lost replies, no hangs)"
        );

        // Ground truth from the tally map the bodies write.
        {
            let m = counts.lock();
            for &(k, ok) in outs.iter() {
                let n = m.get(&k).copied().unwrap_or(0);
                if ok {
                    assert_eq!(n, 1, "key {k}: reply delivered but body ran {n} times");
                } else {
                    assert!(n <= 1, "key {k}: errored call double-executed ({n} runs)");
                }
            }
        }

        // And the same verdict read back over a second, fault-free
        // connection (its own session: dedup state must not bleed).
        let verify = RemoteHandle::new(rt, "Counter", connector);
        for &(k, ok) in outs.iter() {
            let n = verify.call("Count", vals![k]).unwrap()[0].as_int().unwrap();
            if ok {
                assert_eq!(n, 1, "key {k} (remote verify)");
            } else {
                assert!(n <= 1, "key {k} (remote verify)");
            }
        }
    })
    .unwrap();
}

#[test]
fn net_partial_failure_sweep() {
    sweep_explore("net_partial_failure", partial_failure_scenario);
}
