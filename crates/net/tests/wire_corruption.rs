//! Seeded wire-corruption coverage: flip, truncate, and extend valid
//! frames and assert the decoder's robustness contract — every mutation
//! yields a **clean** [`FrameError`] or an identical frame, never a
//! panic, and never a `Call`/`Reply` delivered under a different call id
//! than the one encoded (the misdelivery a corrupted correlation id
//! would cause if the checksum did not guard it).

use alps_core::{vals, AlpsError, ValVec, Value};
use alps_net::{decode_frame, encode_frame, err_to_wire, Frame, FrameError, PROTO_VERSION};

/// Deterministic xorshift64* so every run exercises the same mutations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn specimen_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            version: PROTO_VERSION,
            session: 0x1234_5678_9abc_def0,
            object: "Counter".into(),
        },
        Frame::HelloAck {
            entries: vec![("Bump".into(), 0), ("Get".into(), 1), ("Drain".into(), 2)],
        },
        Frame::HelloErr {
            err: err_to_wire(&AlpsError::Custom("no such object".into())),
        },
        Frame::Call {
            call: 7_001,
            ack_below: 6_998,
            entry: 2,
            budget: 50_000,
            args: ValVec::from(vals![42i64, "key", 2.5f64, true, Value::Unit]),
        },
        Frame::Reply {
            call: 7_001,
            result: Ok(ValVec::from(vals![Value::List(vals![1i64, 2i64, 3i64])])),
        },
        Frame::Reply {
            call: 7_002,
            result: Err(err_to_wire(&AlpsError::Overloaded {
                object: "Counter".into(),
            })),
        },
    ]
}

/// The call id a frame carries, if it carries one.
fn call_id_of(f: &Frame) -> Option<u64> {
    match f {
        Frame::Call { call, .. } | Frame::Reply { call, .. } => Some(*call),
        _ => None,
    }
}

/// Random single-byte XOR anywhere in the frame (header included):
/// decode must return a clean error — or, only if the mutation somehow
/// produced a self-consistent frame, the *identical* frame. A different
/// frame (above all, a different call id) is misdelivery.
#[test]
fn seeded_byte_flips_never_misdeliver() {
    let mut rng = Rng(0xa1b2_c3d4_e5f6_0718);
    for original in specimen_frames() {
        let bytes = encode_frame(&original).unwrap();
        for _ in 0..500 {
            let off = (rng.next() as usize) % bytes.len();
            let mask = (rng.next() as u8) | 1; // never the identity flip
            let mut bad = bytes.clone();
            bad[off] ^= mask;
            match decode_frame(&bad) {
                Err(_) => {} // clean rejection: the contract
                Ok((frame, used)) => {
                    assert_eq!(
                        frame, original,
                        "flip at {off} decoded to a DIFFERENT frame"
                    );
                    assert_eq!(used, bytes.len());
                    assert_eq!(
                        call_id_of(&frame),
                        call_id_of(&original),
                        "flip at {off} moved a call id — misdelivery"
                    );
                }
            }
        }
    }
}

/// Every possible truncation of every specimen is a clean error.
#[test]
fn every_truncation_is_a_clean_error() {
    for original in specimen_frames() {
        let bytes = encode_frame(&original).unwrap();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(_) => {}
                Ok((f, _)) => panic!("truncation to {cut} bytes decoded to {f:?}"),
            }
        }
    }
}

/// Seeded multi-byte damage (2–8 flips per mutation) — the decoder must
/// stay total under compound corruption too.
#[test]
fn seeded_shotgun_damage_never_panics() {
    let mut rng = Rng(0x5eed_5eed_5eed_5eed);
    for original in specimen_frames() {
        let bytes = encode_frame(&original).unwrap();
        for _ in 0..300 {
            let mut bad = bytes.clone();
            let flips = 2 + (rng.next() as usize) % 7;
            for _ in 0..flips {
                let off = (rng.next() as usize) % bad.len();
                bad[off] ^= (rng.next() as u8) | 1;
            }
            // Also sometimes truncate after the damage.
            if rng.next().is_multiple_of(3) {
                let keep = (rng.next() as usize) % (bad.len() + 1);
                bad.truncate(keep);
            }
            match decode_frame(&bad) {
                Err(_) => {}
                Ok((frame, _)) => {
                    assert_eq!(
                        call_id_of(&frame),
                        call_id_of(&original),
                        "compound damage moved a call id"
                    );
                }
            }
        }
    }
}

/// Garbage that was never a frame at all decodes to clean errors.
#[test]
fn pure_garbage_is_rejected_cleanly() {
    let mut rng = Rng(17);
    for _ in 0..1_000 {
        let len = (rng.next() as usize) % 64;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if let Ok((f, _)) = decode_frame(&garbage) {
            // Vanishingly unlikely (needs a valid checksum); tolerate
            // only frames that carry no call id and thus cannot
            // misdeliver.
            assert!(call_id_of(&f).is_none(), "garbage decoded to {f:?}");
        }
    }
}

/// Appending trailing bytes to a valid frame must not change what the
/// prefix decodes to (stream framing: the decoder consumes exactly one
/// frame and reports its length).
#[test]
fn trailing_stream_bytes_do_not_leak_into_the_frame() {
    for original in specimen_frames() {
        let mut bytes = encode_frame(&original).unwrap();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&[0xAA; 32]);
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(frame, original);
        assert_eq!(
            used, frame_len,
            "decoder consumed stream bytes past the frame"
        );
    }
}

/// A corrupted length prefix must be rejected before any allocation or
/// misread — the two reachable verdicts are `Oversize` and `Truncated`
/// (or a checksum failure when the shrunken body still frames).
#[test]
fn length_prefix_corruption_is_bounded() {
    let original = &specimen_frames()[3];
    let bytes = encode_frame(original).unwrap();
    for flip in 0..4usize {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = bytes.clone();
            bad[flip] ^= mask;
            match decode_frame(&bad) {
                Err(FrameError::Oversize { len }) => {
                    assert!(len > alps_net::MAX_FRAME);
                }
                Err(_) => {}
                Ok((frame, _)) => panic!("length corruption decoded to {frame:?}"),
            }
        }
    }
}
