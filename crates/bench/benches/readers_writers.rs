//! E2's micro-side: readers–writers throughput on the threaded runtime
//! for the four implementations at a read-heavy mix.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use alps_paper::readers_writers::{AlpsRw, MonitorRw, PathRw, RwConfig, RwDatabase, SerializerRw};
use alps_runtime::{Runtime, Spawn};

fn drive(db: Arc<dyn RwDatabase>, rt: &Runtime) {
    let mut hs = Vec::new();
    for i in 0..4 {
        let (db2, rt2) = (Arc::clone(&db), rt.clone());
        hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
            for _ in 0..25 {
                db2.read(&rt2);
            }
        }));
    }
    let (db2, rt2) = (Arc::clone(&db), rt.clone());
    hs.push(rt.spawn_with(Spawn::new("w"), move || {
        for _ in 0..10 {
            db2.write(&rt2);
        }
    }));
    for h in hs {
        h.join().unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let cfg = RwConfig {
        read_max: 4,
        read_cost: 0,
        write_cost: 0,
    };
    let mut g = c.benchmark_group("readers_writers_4r1w");
    g.sample_size(10);
    {
        let rt = Runtime::threaded();
        let db: Arc<dyn RwDatabase> = Arc::new(AlpsRw::spawn(&rt, cfg.clone(), None).unwrap());
        g.bench_function("alps_manager", |b| b.iter(|| drive(Arc::clone(&db), &rt)));
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let db: Arc<dyn RwDatabase> = Arc::new(MonitorRw::new(cfg.clone(), None));
        g.bench_function("monitor", |b| b.iter(|| drive(Arc::clone(&db), &rt)));
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let db: Arc<dyn RwDatabase> = Arc::new(SerializerRw::new(cfg.clone(), None));
        g.bench_function("serializer", |b| b.iter(|| drive(Arc::clone(&db), &rt)));
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let db: Arc<dyn RwDatabase> = Arc::new(PathRw::new(cfg, None));
        g.bench_function("path_expression", |b| {
            b.iter(|| drive(Arc::clone(&db), &rt))
        });
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
