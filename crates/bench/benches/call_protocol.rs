//! Micro-costs of the call protocol (threaded runtime, wall clock):
//! a full accept/start/await/finish round trip, the combining path, and
//! the non-intercepted (implicit-start) path — each in two flavors:
//! the resolving `call(&str, Vec<Value>)` API and the interned
//! `call_id(EntryId, argv![...])` fast path.

use criterion::{criterion_group, criterion_main, Criterion};

use alps_core::{argv, vals, EntryDef, Guard, ObjectBuilder, ObjectHandle, Selected, Ty, Value};
use alps_runtime::Runtime;

fn managed_echo(rt: &Runtime) -> ObjectHandle {
    ObjectBuilder::new("Echo")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Echo")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

fn implicit_echo(rt: &Runtime) -> ObjectHandle {
    ObjectBuilder::new("Plain")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .spawn(rt)
        .unwrap()
}

fn combining_echo(rt: &Runtime) -> ObjectHandle {
    // Manager answers every call itself: pure combining path, no body.
    ObjectBuilder::new("Combine")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercept_params(1)
                .intercept_results(1)
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(|mgr| loop {
            match mgr.select(vec![Guard::accept("Echo")])? {
                Selected::Accepted { call, .. } => {
                    let v = call.params()[0].clone();
                    mgr.finish_accepted(call, vec![v])?;
                }
                _ => unreachable!(),
            }
        })
        .spawn(rt)
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("call_protocol");
    g.sample_size(20);
    {
        let rt = Runtime::threaded();
        let obj = managed_echo(&rt);
        g.bench_function("managed_execute_round_trip", |b| {
            b.iter(|| {
                let r = obj.call("Echo", vals![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let obj = implicit_echo(&rt);
        g.bench_function("implicit_start_round_trip", |b| {
            b.iter(|| {
                let r = obj.call("Echo", vals![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let obj = combining_echo(&rt);
        g.bench_function("combining_no_body", |b| {
            b.iter(|| {
                let r = obj.call("Echo", vals![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    // Interned fast path: resolve once, then call by id with inline args.
    {
        let rt = Runtime::threaded();
        let obj = managed_echo(&rt);
        let id = obj.entry_id("Echo").unwrap();
        g.bench_function("managed_execute_call_id", |b| {
            b.iter(|| {
                let r = obj.call_id(id, argv![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let obj = implicit_echo(&rt);
        let id = obj.entry_id("Echo").unwrap();
        g.bench_function("implicit_start_call_id", |b| {
            b.iter(|| {
                let r = obj.call_id(id, argv![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let obj = combining_echo(&rt);
        let id = obj.entry_id("Echo").unwrap();
        g.bench_function("combining_call_id", |b| {
            b.iter(|| {
                let r = obj.call_id(id, argv![7i64]).unwrap();
                assert_eq!(r[0], Value::Int(7));
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
