//! E7's micro-side: wall-clock cost of the three pool strategies under a
//! burst of calls (threaded runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use alps_core::{vals, EntryDef, Guard, ObjectBuilder, PoolMode, Selected};
use alps_runtime::{Runtime, Spawn};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_sizing_burst16");
    g.sample_size(10);
    let modes = [
        ("per_call", PoolMode::PerCall),
        ("per_slot", PoolMode::PerSlot),
        ("shared_4", PoolMode::Shared(4)),
    ];
    for (name, mode) in modes {
        let rt = Runtime::threaded();
        let obj = ObjectBuilder::new("Svc")
            .entry(
                EntryDef::new("Work")
                    .array(16)
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .pool(mode)
            .manager(|mgr| loop {
                let sel = mgr.select(vec![Guard::accept("Work"), Guard::await_done("Work")])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(&rt)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("burst", name), &mode, |b, _| {
            b.iter(|| {
                let mut hs = Vec::new();
                for i in 0..16 {
                    let obj2 = obj.clone();
                    hs.push(rt.spawn_with(Spawn::new(format!("u{i}")), move || {
                        obj2.call("Work", vals![]).unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
            })
        });
        obj.shutdown();
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
