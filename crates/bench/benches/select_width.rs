//! E10's micro-side: select dispatch cost as the hidden-procedure-array
//! width grows (paper §3's polling concern).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use alps_core::{vals, EntryDef, Guard, ObjectBuilder, PoolMode, Selected};
use alps_runtime::Runtime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("select_width");
    g.sample_size(15);
    for width in [1usize, 16, 256] {
        let rt = Runtime::threaded();
        let obj = ObjectBuilder::new("Wide")
            .entry(
                EntryDef::new("Op")
                    .array(width)
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .pool(PoolMode::Shared(1))
            .manager(|mgr| loop {
                let sel = mgr.select(vec![Guard::accept("Op"), Guard::await_done("Op")])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(&rt)
            .unwrap();
        g.bench_with_input(BenchmarkId::new("call", width), &width, |b, _| {
            b.iter(|| obj.call("Op", vals![]).unwrap())
        });
        obj.shutdown();
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
