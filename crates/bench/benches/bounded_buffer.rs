//! E1's micro-side: bounded-buffer transfer throughput on the threaded
//! runtime — ALPS manager vs monitor vs bare channel.

use criterion::{criterion_group, criterion_main, Criterion};

use alps_paper::bounded_buffer::{AlpsBuffer, ChanBuffer, MonitorBuffer};
use alps_runtime::{Runtime, Spawn};

const BATCH: i64 = 200;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounded_buffer_transfer");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(BATCH as u64));
    {
        let rt = Runtime::threaded();
        let buf = AlpsBuffer::spawn(&rt, 16).unwrap();
        g.bench_function("alps_manager", |b| {
            b.iter(|| {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..BATCH {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                for _ in 0..BATCH {
                    buf.remove(&rt).unwrap();
                }
                p.join().unwrap();
            })
        });
        buf.object().shutdown();
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let buf = MonitorBuffer::new(16);
        g.bench_function("monitor", |b| {
            b.iter(|| {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..BATCH {
                        b2.deposit(&rt2, i);
                    }
                });
                for _ in 0..BATCH {
                    buf.remove(&rt);
                }
                p.join().unwrap();
            })
        });
        rt.shutdown();
    }
    {
        let rt = Runtime::threaded();
        let buf = ChanBuffer::new(16);
        g.bench_function("channel", |b| {
            b.iter(|| {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..BATCH {
                        b2.deposit(&rt2, i);
                    }
                });
                for _ in 0..BATCH {
                    buf.remove(&rt);
                }
                p.join().unwrap();
            })
        });
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
