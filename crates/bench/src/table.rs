//! Minimal aligned-table formatter for the experiments harness.

/// A right-aligned text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to lines.
    pub fn render(&self) -> Vec<String> {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = Vec::with_capacity(self.rows.len() + 2);
        out.push(fmt_row(&self.header));
        out.push(
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        for r in &self.rows {
            out.push(fmt_row(r));
        }
        out
    }
}

/// Shorthand to build a row of heterogeneous displayable cells.
#[macro_export]
macro_rules! cells {
    ($($v:expr),+ $(,)?) => {
        vec![$(format!("{}", $v)),+]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(cells!["a", 1]);
        t.row(cells!["long-name", 23456]);
        let lines = t.render();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(cells!["x", "y"]);
    }
}
