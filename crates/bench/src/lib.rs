//! # alps-bench — the experiment harness
//!
//! Regenerates every table of `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run -p alps-bench --release --bin experiments          # all
//! cargo run -p alps-bench --release --bin experiments -- e3   # one
//! ```
//!
//! Criterion micro-benchmarks for the core primitives live under
//! `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
