//! The experiment suite E1–E10 of `EXPERIMENTS.md`.
//!
//! The paper has no quantitative evaluation; each experiment here
//! quantifies one of its qualitative claims (the paper section is cited
//! on each function). All experiments except E10's cost row run on the
//! deterministic simulator, so every table is exactly reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use alps_core::{vals, EntryDef, Guard, ObjectBuilder, PoolMode, Selected, Ty};
use alps_paper::bounded_buffer::{AlpsBuffer, ChanBuffer, MonitorBuffer};
use alps_paper::dictionary::{synthetic_store, DictConfig, Dictionary};
use alps_paper::nested::{spawn_cross_calling_pair, NestedMonitors};
use alps_paper::parallel_buffer::{ParBufConfig, ParallelBuffer};
use alps_paper::readers_writers::{
    check_rw_invariants, AlpsRw, MonitorRw, PathRw, RwConfig, RwDatabase, RwEvent, SerializerRw,
};
use alps_paper::spooler::{Spooler, SpoolerConfig};
use alps_runtime::metrics::EventLog;
use alps_runtime::{Priority, Runtime, RuntimeError, SimRuntime, Spawn};

use crate::cells;
use crate::table::Table;

/// One experiment's rendered output.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. `"E1"`.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Paper section the claim comes from.
    pub claim: &'static str,
    /// Rendered lines (tables and notes).
    pub lines: Vec<String>,
}

impl Report {
    /// Print to stdout.
    pub fn print(&self) {
        println!("== {}: {} ==", self.id, self.title);
        println!("   claim: {}", self.claim);
        println!();
        for l in &self.lines {
            println!("{l}");
        }
        println!();
    }
}

fn sim<R: Send + 'static>(f: impl FnOnce(&Runtime) -> R + Send + 'static) -> R {
    SimRuntime::new().run(f).expect("experiment deadlocked")
}

// ---------------------------------------------------------------------
// E1 — bounded buffer (paper §2.4.1)
// ---------------------------------------------------------------------

/// E1: the manager expresses monitor-style mutual exclusion; throughput
/// shape matches the monitor baseline across buffer capacities.
pub fn e1() -> Report {
    const ITEMS: i64 = 500;
    const COPY: u64 = 20;
    let mut t = Table::new(&["capacity", "alps-manager", "monitor", "channel"]);
    for cap in [1usize, 4, 16, 64] {
        let alps = sim(move |rt| {
            let buf = AlpsBuffer::spawn_with_copy_cost(rt, cap, COPY).unwrap();
            let (b2, rt2) = (buf.clone(), rt.clone());
            let t0 = rt.now();
            let p = rt.spawn_with(Spawn::new("producer"), move || {
                for i in 0..ITEMS {
                    b2.deposit(&rt2, i).unwrap();
                }
            });
            for _ in 0..ITEMS {
                buf.remove(rt).unwrap();
            }
            p.join().unwrap();
            rt.now() - t0
        });
        let monitor = sim(move |rt| {
            let buf = MonitorBuffer::new(cap);
            let (b2, rt2) = (buf.clone(), rt.clone());
            let t0 = rt.now();
            let p = rt.spawn_with(Spawn::new("producer"), move || {
                for i in 0..ITEMS {
                    rt2.sleep(COPY);
                    b2.deposit(&rt2, i);
                }
            });
            for _ in 0..ITEMS {
                rt.sleep(COPY);
                buf.remove(rt);
            }
            p.join().unwrap();
            rt.now() - t0
        });
        let chan = sim(move |rt| {
            let buf = ChanBuffer::new(cap);
            let (b2, rt2) = (buf.clone(), rt.clone());
            let t0 = rt.now();
            let p = rt.spawn_with(Spawn::new("producer"), move || {
                for i in 0..ITEMS {
                    rt2.sleep(COPY);
                    b2.deposit(&rt2, i);
                }
            });
            for _ in 0..ITEMS {
                rt.sleep(COPY);
                buf.remove(rt);
            }
            p.join().unwrap();
            rt.now() - t0
        });
        t.row(cells![cap, alps, monitor, chan]);
    }
    let mut lines = vec![format!(
        "virtual ticks to move {ITEMS} items (1 producer, 1 consumer, {COPY}-tick copy per op)"
    )];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: the manager's execute serializes the WHOLE operation (copy \
         included), costing 2x against baselines that only serialize the \
         buffer access — exactly the §2.4.1 limitation the parallel buffer \
         of §2.8.2 (experiment E5) removes. Capacity only affects slack."
            .to_string(),
    );
    Report {
        id: "E1",
        title: "bounded buffer: manager vs monitor vs channel",
        claim: "§2.4.1 / §1 — the manager subsumes monitor-style exclusion",
        lines,
    }
}

// ---------------------------------------------------------------------
// E2 — readers–writers (paper §2.5.1)
// ---------------------------------------------------------------------

fn run_rw(
    which: &str,
    readers: usize,
    writers: usize,
    ops: usize,
    read_max: usize,
) -> (u64, usize) {
    let which = which.to_string();
    let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
    let log2 = Arc::clone(&log);
    let elapsed = sim(move |rt| {
        let cfg = RwConfig {
            read_max,
            read_cost: 50,
            write_cost: 100,
        };
        let db: Arc<dyn RwDatabase> = match which.as_str() {
            "alps" => Arc::new(AlpsRw::spawn(rt, cfg, Some(Arc::clone(&log2))).unwrap()),
            "monitor" => Arc::new(MonitorRw::new(cfg, Some(Arc::clone(&log2)))),
            "serializer" => Arc::new(SerializerRw::new(cfg, Some(Arc::clone(&log2)))),
            "path" => Arc::new(PathRw::new(cfg, Some(Arc::clone(&log2)))),
            other => panic!("unknown {other}"),
        };
        let t0 = rt.now();
        let mut hs = Vec::new();
        for i in 0..readers {
            let (db2, rt2) = (Arc::clone(&db), rt.clone());
            hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                for _ in 0..ops {
                    db2.read(&rt2);
                }
            }));
        }
        for i in 0..writers {
            let (db2, rt2) = (Arc::clone(&db), rt.clone());
            hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                for _ in 0..ops {
                    db2.write(&rt2);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        rt.now() - t0
    });
    let peak = check_rw_invariants(&log.snapshot(), read_max);
    (elapsed, peak)
}

/// E2: the hidden-array readers–writers policy: safety, reader sharing,
/// and throughput vs the monitor/serializer/path baselines, plus a
/// `ReadMax` sweep.
pub fn e2() -> Report {
    let mut lines = vec![
        "virtual makespan, 10 clients x 20 ops (read 50, write 100 ticks), ReadMax=4".to_string(),
    ];
    let mut t = Table::new(&[
        "mix (R/W)",
        "alps",
        "monitor",
        "serializer",
        "path",
        "peak readers (alps)",
    ]);
    for (r, w, label) in [(9usize, 1usize, "9/1"), (5, 5, "5/5"), (1, 9, "1/9")] {
        let (alps, peak) = run_rw("alps", r, w, 20, 4);
        let (mono, _) = run_rw("monitor", r, w, 20, 4);
        let (ser, _) = run_rw("serializer", r, w, 20, 4);
        let (path, _) = run_rw("path", r, w, 20, 4);
        t.row(cells![label, alps, mono, ser, path, peak]);
    }
    lines.extend(t.render());
    lines.push(String::new());
    lines.push("ReadMax sweep (alps), 9 readers / 1 writer:".to_string());
    let mut t2 = Table::new(&["ReadMax", "makespan", "peak readers"]);
    for rm in [1usize, 2, 4, 8] {
        let (e, p) = run_rw("alps", 9, 1, 20, rm);
        t2.row(cells![rm, e, p]);
    }
    lines.extend(t2.render());
    lines.push(String::new());
    lines.push(
        "shape: manager and serializer share readers (read-heavy mixes finish \
         fastest); the path-expression baseline serializes readers — the \
         expressiveness gap §1 claims the manager closes. Safety invariants \
         verified from event logs on every run."
            .to_string(),
    );
    Report {
        id: "E2",
        title: "readers–writers: policy expressiveness and ReadMax",
        claim: "§2.5.1 — hidden arrays let the manager admit ReadMax readers, starvation-free",
        lines,
    }
}

// ---------------------------------------------------------------------
// E3 — combining (paper §2.7/2.7.1)
// ---------------------------------------------------------------------

/// E3: request combining saves redundant executions as the duplicate
/// rate grows.
pub fn e3() -> Report {
    const QUERIES: usize = 64;
    const LOOKUP: u64 = 500;
    let mut t = Table::new(&[
        "dup rate",
        "distinct",
        "executed (off)",
        "executed (on)",
        "ticks (off)",
        "ticks (on)",
    ]);
    for dup_pct in [0usize, 25, 50, 75, 95] {
        // dup_pct% of queries go to one hot word; the rest are distinct.
        let hot = (QUERIES * dup_pct) / 100;
        let distinct = QUERIES - hot + usize::from(hot > 0);
        let run = move |combining: bool| -> (u64, u64) {
            sim(move |rt| {
                let dict = Dictionary::spawn(
                    rt,
                    DictConfig {
                        search_max: 16,
                        lookup_cost: LOOKUP,
                        combining,
                    },
                    synthetic_store(QUERIES + 1),
                )
                .unwrap();
                let t0 = rt.now();
                let mut hs = Vec::new();
                for q in 0..QUERIES {
                    let word = if q < hot {
                        "word-0".to_string()
                    } else {
                        format!("word-{}", q + 1)
                    };
                    let d2 = dict.clone();
                    hs.push(rt.spawn_with(Spawn::new(format!("q{q}")), move || {
                        d2.search(&word).unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                (dict.object().stats().starts(), rt.now() - t0)
            })
        };
        let (ex_off, t_off) = run(false);
        let (ex_on, t_on) = run(true);
        t.row(cells![
            format!("{dup_pct}%"),
            distinct,
            ex_off,
            ex_on,
            t_off,
            t_on
        ]);
    }
    let mut lines = vec![format!(
        "{QUERIES} concurrent queries, {LOOKUP}-tick lookups, 16 search slots"
    )];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: with combining, executed searches track the distinct-word \
         count (plus a few re-executions when a hot word recurs after its \
         first wave completes); without it every query executes. The makespan \
         is slot-bound here (64 queries / 16 slots = 4 waves) — combining \
         saves 8x the work at 95% duplicates, the §2.7 Ultracomputer claim."
            .to_string(),
    );
    Report {
        id: "E3",
        title: "dictionary: request combining vs duplicate rate",
        claim: "§2.7.1 — duplicate in-flight requests are answered by one execution",
        lines,
    }
}

// ---------------------------------------------------------------------
// E4 — printer spooler (paper §2.8.1)
// ---------------------------------------------------------------------

/// E4: hidden parameters/results run the printer pool at full
/// utilisation with zero manager bookkeeping.
pub fn e4() -> Report {
    const JOBS: usize = 32;
    let mut t = Table::new(&[
        "printers",
        "makespan",
        "p50 latency",
        "p99 latency",
        "utilisation",
    ]);
    for printers in [1usize, 2, 4, 8] {
        let (makespan, p50, p99, util) = sim(move |rt| {
            let sp = Spooler::spawn(
                rt,
                SpoolerConfig {
                    printers,
                    print_max: JOBS,
                    ticks_per_byte: 1,
                },
            )
            .unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..JOBS {
                let (sp2, rt2) = (sp.clone(), rt.clone());
                let bytes = 500 + (i as i64 % 4) * 250;
                hs.push(rt.spawn_with(Spawn::new(format!("j{i}")), move || {
                    sp2.print(&rt2, "doc", bytes).unwrap();
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            let makespan = rt.now() - t0;
            let stats = sp.printer_stats();
            let busy: u64 = stats.busy.iter().sum();
            let util = busy as f64 / (makespan as f64 * printers as f64);
            (
                makespan,
                sp.latency().percentile(50.0),
                sp.latency().percentile(99.0),
                util,
            )
        });
        t.row(cells![
            printers,
            makespan,
            p50,
            p99,
            format!("{:.0}%", util * 100.0)
        ]);
    }
    let mut lines = vec![format!("{JOBS} jobs, 500–1250 ticks each")];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: makespan halves with each printer doubling while utilisation \
         stays near 100% — the free-printer list lives entirely in the manager, \
         with printer numbers flowing as hidden parameters/results."
            .to_string(),
    );
    Report {
        id: "E4",
        title: "printer spooler: pool utilisation via hidden parameters",
        claim: "§2.8.1 — hidden results eliminate manager bookkeeping",
        lines,
    }
}

// ---------------------------------------------------------------------
// E5 — parallel vs serial buffer (paper §2.8.2)
// ---------------------------------------------------------------------

/// E5: the §2.8.2 parallel buffer overlaps message copies; the §2.4.1
/// serial buffer cannot.
pub fn e5() -> Report {
    const P: usize = 4;
    const C: usize = 4;
    const PER: i64 = 8;
    let mut t = Table::new(&[
        "copy cost",
        "serial (§2.4.1)",
        "parallel (§2.8.2)",
        "speedup",
    ]);
    for copy in [0u64, 50, 200, 800] {
        let serial = sim(move |rt| {
            let buf = AlpsBuffer::spawn_with_copy_cost(rt, 8, copy).unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for p in 0..P {
                let (b, rt2) = (buf.clone(), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("p{p}")), move || {
                    for i in 0..PER {
                        b.deposit(&rt2, p as i64 * 100 + i).unwrap();
                    }
                }));
            }
            for c in 0..C {
                let (b, rt2) = (buf.clone(), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("c{c}")), move || {
                    for _ in 0..(P as i64 * PER / C as i64) {
                        b.remove(&rt2).unwrap();
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            rt.now() - t0
        });
        let parallel = sim(move |rt| {
            let buf = ParallelBuffer::spawn(
                rt,
                ParBufConfig {
                    slots: 8,
                    producer_max: P,
                    consumer_max: C,
                    copy_cost: copy,
                },
            )
            .unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for p in 0..P {
                let b = buf.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("p{p}")), move || {
                    for i in 0..PER {
                        b.deposit(p as i64 * 100 + i).unwrap();
                    }
                }));
            }
            for c in 0..C {
                let b = buf.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("c{c}")), move || {
                    for _ in 0..(P as i64 * PER / C as i64) {
                        b.remove().unwrap();
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            rt.now() - t0
        });
        let speedup = serial as f64 / parallel.max(1) as f64;
        t.row(cells![copy, serial, parallel, format!("{speedup:.2}x")]);
    }
    let mut lines = vec![format!(
        "{P} producers + {C} consumers, {PER} messages each"
    )];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: as messages lengthen, the hidden-slot design approaches the \
         ideal 8x overlap of 4 deposit + 4 remove copies; the serial manager \
         is flat at (copies x cost)."
            .to_string(),
    );
    Report {
        id: "E5",
        title: "parallel bounded buffer vs serial buffer",
        claim: "§2.8.2 — disjoint hidden slots let long-message copies overlap",
        lines,
    }
}

// ---------------------------------------------------------------------
// E6 — nested calls (paper §2.3)
// ---------------------------------------------------------------------

/// E6: the asynchronous `start` avoids the nested-call deadlock that
/// monitors exhibit; the simulator detects the monitor deadlock.
pub fn e6() -> Report {
    let alps = sim(|rt| {
        let (x, _y) = spawn_cross_calling_pair(rt).unwrap();
        let t0 = rt.now();
        let mut hs = Vec::new();
        for i in 0..8i64 {
            let x2 = x.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("c{i}")), move || {
                x2.call("P", vals![i]).unwrap()[0].as_int().unwrap()
            }));
        }
        let ok = hs
            .into_iter()
            .enumerate()
            .all(|(i, h)| h.join().unwrap() == (i as i64 + 101) * 2);
        (ok, rt.now() - t0)
    });
    let monitor = SimRuntime::new().run(|rt| {
        let nm = NestedMonitors::new();
        nm.nested_monitor_call(rt, 1)
    });
    let mut t = Table::new(&["structure", "outcome"]);
    t.row(cells![
        "ALPS managers (X.P -> Y.Q -> X.R)",
        format!("completed, 8/8 correct, {} ticks", alps.1)
    ]);
    let deadlock = match monitor {
        Err(RuntimeError::Deadlock { parked }) => {
            format!("DEADLOCK detected (parked: {})", parked.join(", "))
        }
        other => format!("unexpected: {other:?}"),
    };
    t.row(cells!["nested monitors (same shape)", deadlock]);
    let mut lines = t.render();
    lines.push(String::new());
    lines.push(
        "shape: X's manager starts P asynchronously and stays receptive to the \
         reentrant R; holding monitor X across the nested call self-deadlocks \
         (\"DP, Ada and SR suffer from the nested calls problem\")."
            .to_string(),
    );
    assert!(alps.0, "ALPS cross calls must complete correctly");
    Report {
        id: "E6",
        title: "nested cross-object calls",
        claim: "§2.3 — asynchronous start avoids the nested-call problem",
        lines,
    }
}

// ---------------------------------------------------------------------
// E7 — pool sizing (paper §3)
// ---------------------------------------------------------------------

/// E7: shared pools of `M ≪ N` processes trade latency for processes
/// (the paper's suggested compiler switch).
pub fn e7() -> Report {
    const N: usize = 16; // slots and concurrent callers
    const SERVICE: u64 = 100;
    let mut t = Table::new(&["pool", "procs created", "makespan", "p99 latency"]);
    let modes: Vec<(String, PoolMode)> = vec![
        ("per-call".into(), PoolMode::PerCall),
        ("per-slot (1:1)".into(), PoolMode::PerSlot),
        ("shared(1)".into(), PoolMode::Shared(1)),
        ("shared(2)".into(), PoolMode::Shared(2)),
        ("shared(4)".into(), PoolMode::Shared(4)),
        ("shared(8)".into(), PoolMode::Shared(8)),
        ("shared(16)".into(), PoolMode::Shared(16)),
    ];
    for (label, mode) in modes {
        let (procs, makespan, p99) = sim(move |rt| {
            let obj = ObjectBuilder::new("Svc")
                .entry(
                    EntryDef::new("Work")
                        .array(N)
                        .intercepted()
                        .body(move |ctx, _| {
                            ctx.sleep(SERVICE);
                            Ok(vec![])
                        }),
                )
                .pool(mode)
                .manager(|mgr| loop {
                    let sel = mgr.select(vec![Guard::accept("Work"), Guard::await_done("Work")])?;
                    match sel {
                        Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                        Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                        _ => unreachable!(),
                    }
                })
                .spawn(rt)
                .unwrap();
            let t0 = rt.now();
            let mut hs = Vec::new();
            for i in 0..N {
                let obj2 = obj.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("u{i}")), move || {
                    obj2.call("Work", vals![]).unwrap();
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            let makespan = rt.now() - t0;
            (
                obj.pool_procs_spawned(),
                makespan,
                obj.stats().call_latency().percentile(99.0),
            )
        });
        t.row(cells![label, procs, makespan, p99]);
    }
    let mut lines = vec![format!(
        "{N}-slot entry, {N} simultaneous callers, {SERVICE}-tick service"
    )];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: makespan ~ ceil(N/M) x service for shared(M); per-call matches \
         1:1 latency but creates a process per request — §3's trade-off between \
         process count and queueing delay."
            .to_string(),
    );
    Report {
        id: "E7",
        title: "process pools: per-call vs 1:1 vs shared(M)",
        claim: "§3 — M ≪ N pooled processes suffice for high-demand resources",
        lines,
    }
}

// ---------------------------------------------------------------------
// E8 — manager priority (paper §1/§3)
// ---------------------------------------------------------------------

/// E8: running the manager at high priority makes it "more receptive to
/// entry calls": competitor process turns before each accept.
pub fn e8() -> Report {
    let mut t = Table::new(&[
        "competitors",
        "high-priority manager",
        "equal-priority manager",
    ]);
    for k in [0usize, 4, 16] {
        let run = move |mgr_prio: Priority| -> f64 {
            sim(move |rt| {
                let turns = Arc::new(AtomicU64::new(0));
                let delays: Arc<parking_lot::Mutex<Vec<u64>>> =
                    Arc::new(parking_lot::Mutex::new(Vec::new()));
                let turns_mgr = Arc::clone(&turns);
                let delays_mgr = Arc::clone(&delays);
                let obj = ObjectBuilder::new("Echo")
                    .entry(
                        EntryDef::new("Echo")
                            .params([Ty::Int])
                            .intercept_params(1)
                            .body(|_ctx, _| Ok(vec![])),
                    )
                    .manager_priority(mgr_prio)
                    .manager(move |mgr| loop {
                        let acc = mgr.accept("Echo")?;
                        // The caller passed the competitor-turn counter at
                        // call time; the difference is how many competitor
                        // turns ran before this accept.
                        let at_call = acc.params()[0].as_int()? as u64;
                        let now = turns_mgr.load(Ordering::SeqCst);
                        delays_mgr.lock().push(now.saturating_sub(at_call));
                        mgr.execute(acc)?;
                    })
                    .spawn(rt)
                    .unwrap();
                // K competitors at NORMAL priority, each taking short
                // virtual-time steps.
                for c in 0..k {
                    let (rt2, turns2) = (rt.clone(), Arc::clone(&turns));
                    rt.spawn_with(Spawn::new(format!("comp{c}")).daemon(true), move || loop {
                        turns2.fetch_add(1, Ordering::SeqCst);
                        rt2.sleep(1);
                    });
                }
                for _ in 0..50 {
                    let snapshot = turns.load(Ordering::SeqCst) as i64;
                    obj.call("Echo", vals![snapshot]).unwrap();
                    rt.sleep(3);
                }
                let d = delays.lock();
                d.iter().sum::<u64>() as f64 / d.len().max(1) as f64
            })
        };
        let high = run(Priority::MANAGER);
        let equal = run(Priority::NORMAL);
        t.row(cells![k, format!("{high:.1}"), format!("{equal:.1}")]);
    }
    let mut lines = vec![
        "mean competitor turns between call arrival and manager accept (50 calls)".to_string(),
    ];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: at high priority the manager accepts before competitors get \
         the CPU; at equal priority acceptance waits behind the competitor \
         queue — the §1 recommendation quantified."
            .to_string(),
    );
    Report {
        id: "E8",
        title: "manager priority and call receptiveness",
        claim: "§1/§3 — the manager should run at higher priority",
        lines,
    }
}

// ---------------------------------------------------------------------
// E9 — run-time pri guards (paper §2.4)
// ---------------------------------------------------------------------

/// E9: run-time `pri` expressions implement shortest-seek-first disk
/// scheduling; compare against FCFS on total head travel.
pub fn e9() -> Report {
    // A fixed, seeded request set of disk tracks.
    let tracks: Vec<i64> = vec![53, 183, 37, 122, 14, 124, 65, 67, 98, 150, 3, 199];
    let run = |sstf: bool| -> (i64, u64) {
        let tracks = tracks.clone();
        sim(move |rt| {
            let order: Arc<parking_lot::Mutex<Vec<i64>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let order2 = Arc::clone(&order);
            let n = tracks.len();
            let obj = ObjectBuilder::new("Disk")
                .entry(
                    EntryDef::new("Seek")
                        .params([Ty::Int, Ty::Int]) // (arrival seq, track)
                        .array(n)
                        .intercept_params(2)
                        .body(|_ctx, _| Ok(vec![])),
                )
                .manager(move |mgr| {
                    let mut head = 100i64; // initial head position
                    let mut served = 0usize;
                    loop {
                        let sel = mgr.select(vec![Guard::accept("Seek")
                            // Let the whole batch attach before serving so
                            // the pri expression orders all 12 requests.
                            .when(move |v| served > 0 || v.pending("Seek") >= n)
                            .pri(move |v| {
                                let seq = v.values()[0].as_int().unwrap();
                                let track = v.values()[1].as_int().unwrap();
                                if sstf {
                                    (track - head).abs()
                                } else {
                                    seq
                                }
                            })])?;
                        match sel {
                            Selected::Accepted { call, .. } => {
                                let track = call.params()[1].as_int()?;
                                let dist = (track - head).unsigned_abs();
                                head = track;
                                order2.lock().push(track);
                                mgr.sleep(dist); // seeking takes time
                                mgr.execute(call)?;
                                served += 1;
                            }
                            _ => unreachable!(),
                        }
                    }
                })
                .spawn(rt)
                .unwrap();
            // Issue all requests, then let the manager drain them.
            let t0 = rt.now();
            let mut hs = Vec::new();
            for (seq, tr) in tracks.iter().enumerate() {
                let obj2 = obj.clone();
                let tr = *tr;
                hs.push(rt.spawn_with(Spawn::new(format!("req{seq}")), move || {
                    obj2.call("Seek", vals![seq as i64, tr]).unwrap();
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            let elapsed = rt.now() - t0;
            let served = order.lock().clone();
            let mut head = 100i64;
            let mut travel = 0i64;
            for t in served {
                travel += (t - head).abs();
                head = t;
            }
            (travel, elapsed)
        })
    };
    let (fcfs_travel, fcfs_time) = run(false);
    let (sstf_travel, sstf_time) = run(true);
    let mut t = Table::new(&["policy", "total head travel", "makespan (ticks)"]);
    t.row(cells!["FCFS (pri = arrival order)", fcfs_travel, fcfs_time]);
    t.row(cells!["SSTF (pri = seek distance)", sstf_travel, sstf_time]);
    let mut lines = vec![format!("12 disk requests, head starts at track 100")];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: the run-time pri expression turns the same manager into a \
         shortest-seek-first scheduler, cutting head travel (the SR-style \
         facility §2.4 adopts)."
            .to_string(),
    );
    Report {
        id: "E9",
        title: "run-time pri guards: SSTF vs FCFS disk scheduling",
        claim: "§2.4 — priorities \"cannot always be specified as compile-time constants\"",
        lines,
    }
}

// ---------------------------------------------------------------------
// E10 — guard dispatch cost (paper §3)
// ---------------------------------------------------------------------

/// E10: per-select dispatch cost as the procedure-array width grows (the
/// §3 polling concern). Wall-clock, threaded runtime.
pub fn e10() -> Report {
    let mut t = Table::new(&["array width", "ns per call (approx)"]);
    for width in [1usize, 4, 16, 64, 256] {
        let rt = Runtime::threaded();
        let obj = ObjectBuilder::new("Wide")
            .entry(
                EntryDef::new("Op")
                    .array(width)
                    .intercepted()
                    .body(|_ctx, _| Ok(vec![])),
            )
            .pool(PoolMode::Shared(1))
            .manager(|mgr| loop {
                let sel = mgr.select(vec![Guard::accept("Op"), Guard::await_done("Op")])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(&rt)
            .unwrap();
        // Warm up, then measure.
        for _ in 0..50 {
            obj.call("Op", vals![]).unwrap();
        }
        let iters = 2_000u32;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            obj.call("Op", vals![]).unwrap();
        }
        let ns = t0.elapsed().as_nanos() as u64 / u64::from(iters);
        obj.shutdown();
        rt.shutdown();
        t.row(cells![width, ns]);
    }
    let mut lines = vec![
        "sequential calls through a manager whose entry has the given array \
         width (threaded runtime; wall-clock, machine-dependent)"
            .to_string(),
    ];
    lines.extend(t.render());
    lines.push(String::new());
    lines.push(
        "shape: dispatch cost grows slowly with width because guard evaluation \
         scans slots; §3's suggested status-change queue would make it O(1). \
         Absolute numbers vary by machine."
            .to_string(),
    );
    Report {
        id: "E10",
        title: "select dispatch cost vs procedure-array width",
        claim: "§3 — polling wide guard sets is the implementation concern",
        lines,
    }
}

/// All experiments in order.
pub fn all() -> Vec<Report> {
    vec![e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10()]
}

/// Look up one experiment by id (`"e1"`…`"e10"`, case-insensitive).
pub fn by_id(id: &str) -> Option<Report> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        _ => None,
    }
}
