// Temporary diagnostic for the contended intake path. Not committed.
use std::time::Instant;

use alps_core::{argv, vals, EntryDef, Guard, ObjectBuilder, ObjectHandle, Selected, Ty};
use alps_runtime::{Runtime, Spawn};

fn managed_echo(rt: &Runtime) -> ObjectHandle {
    ObjectBuilder::new("Echo")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let acc = mgr.accept("Echo")?;
            mgr.execute(acc)?;
        })
        .spawn(rt)
        .unwrap()
}

fn combining_echo(rt: &Runtime) -> ObjectHandle {
    ObjectBuilder::new("Combine")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercept_params(1)
                .intercept_results(1)
                .body(|_ctx, args| Ok(argv![args[0].clone()])),
        )
        .manager(|mgr| loop {
            match mgr.select(vec![Guard::accept("Echo")])? {
                Selected::Accepted { call, .. } => {
                    let v = call.params()[0].clone();
                    mgr.finish_accepted(call, vec![v])?;
                }
                _ => unreachable!(),
            }
        })
        .spawn(rt)
        .unwrap()
}

fn contended(label: &str, mk: fn(&Runtime) -> ObjectHandle, callers: u32, per_caller: u64) {
    let rt = Runtime::threaded();
    let obj = mk(&rt);
    let id = obj.entry_id("Echo").unwrap();
    for _ in 0..per_caller / 2 {
        obj.call_id(id, argv![7i64]).unwrap();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let hs: Vec<_> = (0..callers)
            .map(|c| {
                let o2 = obj.clone();
                rt.spawn_with(Spawn::new(format!("caller-{c}")), move || {
                    for _ in 0..per_caller {
                        o2.call_id(id, argv![7i64]).unwrap();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let total = callers as u64 * per_caller;
        let ns = t0.elapsed().as_nanos() as f64 / total as f64;
        if ns < best {
            best = ns;
        }
    }
    println!(
        "{label}/callers_{callers}: {best:.0} ns/op ({:.0} ops/s)",
        1e9 / best
    );
    println!("  stats: {}", obj.stats());
    obj.shutdown();
    rt.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("both");
    if which == "main1" {
        // Main-thread 1-caller sample, like BENCH_call_protocol.
        for (label, mk) in [
            (
                "managed_execute",
                managed_echo as fn(&Runtime) -> ObjectHandle,
            ),
            ("combining", combining_echo as fn(&Runtime) -> ObjectHandle),
        ] {
            let rt = Runtime::threaded();
            let obj = mk(&rt);
            let id = obj.entry_id("Echo").unwrap();
            for _ in 0..5_000 {
                obj.call_id(id, argv![7i64]).unwrap();
            }
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t0 = Instant::now();
                for _ in 0..20_000 {
                    obj.call_id(id, argv![7i64]).unwrap();
                }
                let ns = t0.elapsed().as_nanos() as f64 / 20_000.0;
                if ns < best {
                    best = ns;
                }
            }
            println!("{label}/main1: {best:.0} ns/op");
            println!("  stats: {}", obj.stats());
            obj.shutdown();
            rt.shutdown();
        }
        return;
    }
    for (label, mk) in [
        (
            "managed_execute",
            managed_echo as fn(&Runtime) -> ObjectHandle,
        ),
        ("combining", combining_echo as fn(&Runtime) -> ObjectHandle),
    ] {
        if which != "both" && which != label {
            continue;
        }
        for callers in [1u32, 4, 16] {
            let per = 4_000 / callers as u64;
            contended(label, mk, callers, per);
        }
    }
    // sample-style: main thread caller, like BENCH_call_protocol.
    let _ = vals![0i64];
}
