//! Regenerate the EXPERIMENTS.md tables, or (with `bench-json`) emit
//! machine-readable call-protocol throughput numbers.

use alps_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "bench-json") {
        bench_json::run();
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "all") {
        for r in experiments::all() {
            r.print();
        }
        return;
    }
    for a in &args {
        match experiments::by_id(a) {
            Some(r) => r.print(),
            None => {
                eprintln!("unknown experiment `{a}` (use e1..e10, all, or bench-json)");
                std::process::exit(1);
            }
        }
    }
}

/// `experiments bench-json` — time the call-protocol scenarios from
/// `benches/call_protocol.rs` (both the resolving `call(&str)` API and the
/// interned `call_id` fast path) plus the bounded-buffer transfer from
/// `benches/bounded_buffer.rs`, and write `BENCH_call_protocol.json`.
mod bench_json {
    use std::time::Instant;

    use alps_core::{argv, vals, EntryDef, Guard, ObjectBuilder, ObjectHandle, Selected, Ty};
    use alps_paper::bounded_buffer::AlpsBuffer;
    use alps_runtime::{Runtime, Spawn};

    struct Sample {
        name: &'static str,
        ns_per_op: f64,
        ops_per_sec: f64,
    }

    /// Best-of-`reps` wall-clock timing of `iters` runs of `f`.
    fn measure<F: FnMut()>(iters: u64, reps: u32, mut f: F) -> f64 {
        for _ in 0..iters / 4 {
            f(); // warm up
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    }

    fn sample(name: &'static str, iters: u64, f: impl FnMut()) -> Sample {
        let ns = measure(iters, 5, f);
        println!("  {name}: {ns:.0} ns/op ({:.0} ops/s)", 1e9 / ns);
        Sample {
            name,
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        }
    }

    fn managed_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Echo")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Echo")?;
                mgr.execute(acc)?;
            })
            .spawn(rt)
            .unwrap()
    }

    fn implicit_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Plain")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .spawn(rt)
            .unwrap()
    }

    fn combining_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Combine")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercept_params(1)
                    .intercept_results(1)
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("Echo")])? {
                    Selected::Accepted { call, .. } => {
                        let v = call.params()[0].clone();
                        mgr.finish_accepted(call, vec![v])?;
                    }
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap()
    }

    pub fn run() {
        let mut call_protocol = Vec::new();

        println!("call_protocol:");
        for (label_str, label_id, mk) in [
            (
                "managed_execute/call_str",
                "managed_execute/call_id",
                managed_echo as fn(&Runtime) -> ObjectHandle,
            ),
            (
                "implicit_start/call_str",
                "implicit_start/call_id",
                implicit_echo as fn(&Runtime) -> ObjectHandle,
            ),
            (
                "combining/call_str",
                "combining/call_id",
                combining_echo as fn(&Runtime) -> ObjectHandle,
            ),
        ] {
            let iters = if label_str.starts_with("implicit") {
                200_000
            } else {
                20_000
            };
            let rt = Runtime::threaded();
            let obj = mk(&rt);
            call_protocol.push(sample(label_str, iters, || {
                obj.call("Echo", vals![7i64]).unwrap();
            }));
            let id = obj.entry_id("Echo").unwrap();
            call_protocol.push(sample(label_id, iters, || {
                obj.call_id(id, argv![7i64]).unwrap();
            }));
            obj.shutdown();
            rt.shutdown();
        }

        println!("bounded_buffer:");
        const BATCH: i64 = 200;
        let mut bounded = Vec::new();
        {
            let rt = Runtime::threaded();
            let buf = AlpsBuffer::spawn(&rt, 16).unwrap();
            let mut s = sample("alps_manager/transfer", 50, || {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..BATCH {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                for _ in 0..BATCH {
                    buf.remove(&rt).unwrap();
                }
                p.join().unwrap();
            });
            // Per-element numbers are what E1 reports.
            s.ns_per_op /= BATCH as f64;
            s.ops_per_sec *= BATCH as f64;
            bounded.push(s);
            buf.object().shutdown();
            rt.shutdown();
        }

        // Seed baseline (commit b92eaac, the pre-fast-path protocol):
        // measured on this machine from a worktree of the seed with the
        // same offline shims grafted in, `cargo bench --bench
        // call_protocol` / `--bench bounded_buffer`. The seed's combining
        // path deadlocked under the threaded runtime and could not be
        // measured.
        const SEED_MANAGED_NS: f64 = 18_183.0;
        const SEED_IMPLICIT_NS: f64 = 8_997.3;
        const SEED_BOUNDED_ELEM_PER_S: f64 = 63_442.0;

        let find = |n: &str| -> f64 {
            call_protocol
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.ns_per_op)
                .unwrap()
        };
        let sp_managed = find("managed_execute/call_str") / find("managed_execute/call_id");
        let sp_implicit = find("implicit_start/call_str") / find("implicit_start/call_id");
        let sp_combining = find("combining/call_str") / find("combining/call_id");
        let seed_sp_managed = SEED_MANAGED_NS / find("managed_execute/call_id");
        let seed_sp_implicit = SEED_IMPLICIT_NS / find("implicit_start/call_id");
        let seed_sp_bounded = bounded[0].ops_per_sec / SEED_BOUNDED_ELEM_PER_S;

        let mut json = String::from("{\n  \"bench\": \"call_protocol\",\n");
        json.push_str(
            "  \"unit\": {\"ns_per_op\": \"nanoseconds per call\", \"ops_per_sec\": \"calls per second\"},\n",
        );
        for (group, samples) in [
            ("call_protocol", &call_protocol),
            ("bounded_buffer", &bounded),
        ] {
            json.push_str(&format!("  \"{group}\": {{\n"));
            for (i, s) in samples.iter().enumerate() {
                json.push_str(&format!(
                    "    \"{}\": {{\"ns_per_op\": {:.1}, \"ops_per_sec\": {:.0}}}{}\n",
                    s.name,
                    s.ns_per_op,
                    s.ops_per_sec,
                    if i + 1 == samples.len() { "" } else { "," }
                ));
            }
            json.push_str("  },\n");
        }
        json.push_str(&format!(
            "  \"speedup_call_id_over_call_str\": {{\"managed_execute\": {sp_managed:.2}, \"implicit_start\": {sp_implicit:.2}, \"combining\": {sp_combining:.2}}},\n"
        ));
        json.push_str(&format!(
            "  \"seed_baseline\": {{\"note\": \"commit b92eaac, pre-fast-path call(&str) protocol, same machine/shims; seed combining deadlocked and was unmeasurable\", \"managed_execute_ns\": {SEED_MANAGED_NS:.1}, \"implicit_start_ns\": {SEED_IMPLICIT_NS:.1}, \"bounded_buffer_elem_per_sec\": {SEED_BOUNDED_ELEM_PER_S:.0}}},\n"
        ));
        json.push_str(&format!(
            "  \"speedup_call_id_over_seed_baseline\": {{\"managed_execute\": {seed_sp_managed:.2}, \"implicit_start\": {seed_sp_implicit:.2}, \"bounded_buffer\": {seed_sp_bounded:.2}}}\n}}\n"
        ));

        std::fs::write("BENCH_call_protocol.json", &json).expect("write BENCH_call_protocol.json");
        println!(
            "speedups (call_id vs call_str, same build): managed {sp_managed:.2}x, implicit {sp_implicit:.2}x, combining {sp_combining:.2}x"
        );
        println!(
            "speedups (call_id vs seed baseline): managed {seed_sp_managed:.2}x, implicit {seed_sp_implicit:.2}x, bounded_buffer {seed_sp_bounded:.2}x"
        );
        println!("wrote BENCH_call_protocol.json");
    }
}
