//! Regenerate the EXPERIMENTS.md tables, emit machine-readable
//! throughput numbers (`bench-json`), or interactively probe one
//! contended scenario with its protocol stats (`probe`).

use alps_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "bench-json") {
        // `--smoke` shrinks iteration counts ~20x so CI can exercise the
        // full bench path (object setup, contended callers, JSON emission)
        // in seconds; the emitted numbers are not meaningful.
        bench_json::run(args.iter().any(|a| a == "--smoke"));
        return;
    }
    if args.first().map(String::as_str) == Some("lang-bench") {
        // `experiments lang-bench [--smoke]` — ALPS source programs
        // interpreted vs compiled vs hand-written embedded objects, on
        // the real threaded runtime; ratios written to
        // BENCH_lang_compile.json. Both comparison baselines (the
        // interpreter and the embedded objects) are measured in the same
        // run.
        lang_bench::run(args.iter().any(|a| a == "--smoke"));
        return;
    }
    if args.first().map(String::as_str) == Some("traffic") {
        // `experiments traffic [--smoke]` — open-loop arrival harness:
        // Poisson/bursty arrivals with Zipf key skew over a sharded
        // supervised group, latency measured from each call's *intended*
        // arrival time, offered load swept past saturation, tail
        // percentiles written to BENCH_traffic.json.
        traffic::run(args.iter().any(|a| a == "--smoke"));
        return;
    }
    if args.first().map(String::as_str) == Some("remote") {
        // `experiments remote [--smoke]` — distributed objects over real
        // loopback TCP against a self-spawned second process: warm-call
        // overhead vs the in-process managed baseline (measured in the
        // same run), then a seeded transport-fault sweep (drops, delays,
        // duplicates, disconnects) verifying exactly-once execution.
        // Results written to BENCH_remote.json.
        remote::run(args.iter().any(|a| a == "--smoke"));
        return;
    }
    if args.first().map(String::as_str) == Some("remote-server") {
        // Child role for `remote`: bind an ephemeral loopback port,
        // serve the Counter object, report `PORT=<n>` on stdout, exit
        // when the parent closes our stdin.
        remote::serve_child();
        return;
    }
    if args.first().map(String::as_str) == Some("probe") {
        // `experiments probe [managed_execute|combining|both]` — run the
        // contended-intake scenarios once each and dump the objects'
        // protocol stats (drain batches, spin-vs-park resolution, …) for
        // eyeballing a configuration; the timing figures are incidental.
        bench_json::probe(args.get(1).map(String::as_str).unwrap_or("both"));
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "all") {
        for r in experiments::all() {
            r.print();
        }
        return;
    }
    for a in &args {
        match experiments::by_id(a) {
            Some(r) => r.print(),
            None => {
                eprintln!(
                    "unknown experiment `{a}` (use e1..e10, all, bench-json, lang-bench, probe, traffic, or remote)"
                );
                std::process::exit(1);
            }
        }
    }
}

/// `experiments bench-json` — time the call-protocol scenarios from
/// `benches/call_protocol.rs` (both the resolving `call(&str)` API and the
/// interned `call_id` fast path) plus the bounded-buffer transfer from
/// `benches/bounded_buffer.rs`, and write `BENCH_call_protocol.json`.
mod bench_json {
    use std::time::Instant;

    use alps_core::{
        argv, vals, AdmissionPolicy, AlpsError, EntryDef, Guard, ObjectBuilder, ObjectHandle,
        Selected, ShardedBuilder, Ty,
    };
    use alps_paper::bounded_buffer::AlpsBuffer;
    use alps_runtime::{Runtime, Spawn};

    struct Sample {
        name: &'static str,
        ns_per_op: f64,
        ops_per_sec: f64,
    }

    /// Best-of-`reps` wall-clock timing of `iters` runs of `f`.
    fn measure<F: FnMut()>(iters: u64, reps: u32, mut f: F) -> f64 {
        for _ in 0..iters / 4 {
            f(); // warm up
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    }

    fn sample(name: &'static str, iters: u64, f: impl FnMut()) -> Sample {
        let ns = measure(iters, 5, f);
        println!("  {name}: {ns:.0} ns/op ({:.0} ops/s)", 1e9 / ns);
        Sample {
            name,
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        }
    }

    fn managed_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Echo")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Echo")?;
                mgr.execute(acc)?;
            })
            .spawn(rt)
            .unwrap()
    }

    fn implicit_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Plain")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .spawn(rt)
            .unwrap()
    }

    fn combining_echo(rt: &Runtime) -> ObjectHandle {
        ObjectBuilder::new("Combine")
            .entry(
                EntryDef::new("Echo")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercept_params(1)
                    .intercept_results(1)
                    .body(|_ctx, args| Ok(argv![args[0].clone()])),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("Echo")])? {
                    Selected::Accepted { call, .. } => {
                        let v = call.params()[0].clone();
                        mgr.finish_accepted(call, vec![v])?;
                    }
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap()
    }

    /// Aggregate throughput of `callers` concurrent callers each issuing
    /// `per_caller` interned `call_id` calls against one shared object:
    /// best-of-`reps` wall time divided by total calls. The 1-caller case
    /// runs its loop on the measuring thread itself — exactly the
    /// methodology behind the PR-1 single-caller numbers it is compared
    /// against (and the conservative choice for the 16-vs-1 throughput
    /// ratio, since a freshly spawned lone caller only measures slower);
    /// multi-caller cases spawn one proc per caller and join them all.
    fn contended(
        mk: fn(&Runtime) -> ObjectHandle,
        callers: u32,
        per_caller: u64,
        reps: u32,
        print_stats: bool,
    ) -> ContendedResult {
        use alps_runtime::metrics::Histogram;
        use std::sync::Arc;

        let rt = Runtime::threaded();
        let obj = mk(&rt);
        let id = obj.entry_id("Echo").unwrap();
        for _ in 0..per_caller / 2 {
            obj.call_id(id, argv![7i64]).unwrap(); // warm up
        }
        // Per-call latency distribution, pooled across every rep (the
        // mean stays best-of-reps; a tail is only honest unfiltered).
        let hist = Arc::new(Histogram::new());
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            if callers == 1 {
                // One clock read per call: call N's end stamp doubles as
                // call N+1's start, so the histogram costs half what
                // bracketing with two `Instant::now()`s would.
                let mut prev = Instant::now();
                for _ in 0..per_caller {
                    obj.call_id(id, argv![7i64]).unwrap();
                    let now = Instant::now();
                    hist.record((now - prev).as_nanos().max(1) as u64);
                    prev = now;
                }
            } else {
                let hs: Vec<_> = (0..callers)
                    .map(|c| {
                        let o2 = obj.clone();
                        let h2 = Arc::clone(&hist);
                        rt.spawn_with(Spawn::new(format!("caller-{c}")), move || {
                            let mut prev = Instant::now();
                            for _ in 0..per_caller {
                                o2.call_id(id, argv![7i64]).unwrap();
                                let now = Instant::now();
                                h2.record((now - prev).as_nanos().max(1) as u64);
                                prev = now;
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
            }
            let total = callers as u64 * per_caller;
            let ns = t0.elapsed().as_nanos() as f64 / total as f64;
            if ns < best {
                best = ns;
            }
        }
        if print_stats {
            println!("    stats: {}", obj.stats());
        }
        obj.shutdown();
        rt.shutdown();
        ContendedResult {
            ns_per_op: best,
            ops_per_sec: 1e9 / best,
            p50_ns: hist.percentile(50.0),
            p99_ns: hist.percentile(99.0),
        }
    }

    /// Closed-loop timing plus the caller-side latency tail (pooled over
    /// all reps — best-of for the mean, unfiltered for the percentiles).
    struct ContendedResult {
        ns_per_op: f64,
        ops_per_sec: f64,
        p50_ns: u64,
        p99_ns: u64,
    }

    /// `experiments probe` — the old standalone batchprobe binary, folded
    /// in: run the contended scenarios once per caller count and print
    /// the object's full protocol stats next to the timing.
    pub fn probe(which: &str) {
        for (label, mk) in [
            (
                "managed_execute",
                managed_echo as fn(&Runtime) -> ObjectHandle,
            ),
            ("combining", combining_echo as fn(&Runtime) -> ObjectHandle),
        ] {
            if which != "both" && which != label {
                continue;
            }
            for callers in [1u32, 4, 16] {
                let per_caller = if callers == 1 {
                    20_000
                } else {
                    4_000 / callers as u64
                };
                let r = contended(mk, callers, per_caller, 3, true);
                println!(
                    "  {label}/callers_{callers}: {:.0} ns/op ({:.0} ops/s, p50 {} p99 {})",
                    r.ns_per_op, r.ops_per_sec, r.p50_ns, r.p99_ns
                );
            }
        }
    }

    /// Number of distinct hot keys the sharding sweep's callers cycle
    /// through — small on purpose, so concurrent callers keep finding
    /// the same read already in flight.
    const HOT_KEYS: u64 = 4;

    /// One shard of the hot-read group: a managed-execute object whose
    /// body waits 100µs per read — a dictionary-lookup-sized unit of
    /// I/O (the paper's §2.7.1 dictionary models a 500µs disk lookup;
    /// `sleep` parks the green task like a real I/O wait would). This is
    /// what the sweep's two mechanisms act on: sharding lets the waits
    /// of distinct keys overlap across managers, and cross-shard
    /// combining dedupes the waits for the *same* key entirely.
    fn hot_read_shard(shard: usize) -> ObjectBuilder {
        ObjectBuilder::new(format!("Hot#{shard}"))
            .entry(
                EntryDef::new("Read")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|ctx, args| {
                        ctx.sleep(100);
                        Ok(argv![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Read")?;
                mgr.execute(acc)?;
            })
    }

    /// Aggregate throughput of `callers` green tasks hammering a hot-key
    /// read workload on an `S`-shard group riding the work-stealing pool
    /// executor. `combined` switches the callers from plain routed
    /// `call_id` to `call_id_combined` (cross-shard duplicate-read
    /// combining). Returns best-of-`reps` (ns/op, ops/s).
    /// Returns best-of-`reps` (ns/op, ops/s) plus caller-side p50/p99
    /// round-trip latency (ns, pooled over all reps).
    fn sharded_hot_read(
        shards: usize,
        callers: u32,
        per_caller: u64,
        reps: u32,
        combined: bool,
    ) -> (f64, f64, u64, u64) {
        let hist = std::sync::Arc::new(alps_runtime::metrics::Histogram::new());
        let rt = Runtime::thread_pool(4);
        let group = ShardedBuilder::new("Hot", shards)
            .spawn(&rt, hot_read_shard)
            .unwrap();
        let id = group.entry_id("Read").unwrap();
        for k in 0..HOT_KEYS as i64 {
            group.call_id(id, argv![k]).unwrap(); // warm up + route check
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
            use std::sync::Arc;
            // Start barrier: a caller that begins the key sequence even a
            // couple of bursts late never meets the herd again (it leads
            // every key solo), so spawn stagger alone can halve the dedup
            // factor. Hold everyone at the gate until all are spawned.
            let ready = Arc::new(AtomicU32::new(0));
            let go = Arc::new(AtomicBool::new(false));
            let hs: Vec<_> = (0..callers)
                .map(|c| {
                    let g2 = group.clone();
                    let rt2 = rt.clone();
                    let (ready2, go2) = (Arc::clone(&ready), Arc::clone(&go));
                    let h2 = Arc::clone(&hist);
                    rt.spawn_with(Spawn::new(format!("hot-{c}")), move || {
                        ready2.fetch_add(1, Ordering::SeqCst);
                        while !go2.load(Ordering::Acquire) {
                            rt2.yield_now();
                        }
                        let mut prev = Instant::now();
                        for j in 0..per_caller {
                            // Every caller walks the SAME key sequence —
                            // the thundering-herd shape combining exists
                            // for: concurrent callers keep finding their
                            // read already in flight.
                            let k = (j % HOT_KEYS) as i64;
                            if combined {
                                g2.call_id_combined(id, argv![k]).unwrap();
                            } else {
                                g2.call_id(id, argv![k]).unwrap();
                            }
                            let now = Instant::now();
                            h2.record((now - prev).as_nanos().max(1) as u64);
                            prev = now;
                        }
                    })
                })
                .collect();
            while ready.load(Ordering::SeqCst) < callers {
                std::thread::yield_now();
            }
            let t0 = Instant::now();
            go.store(true, Ordering::Release);
            for h in hs {
                h.join().unwrap();
            }
            let total = u64::from(callers) * per_caller;
            let ns = t0.elapsed().as_nanos() as f64 / total as f64;
            if ns < best {
                best = ns;
            }
        }
        if std::env::var_os("SHARD_STATS").is_some() {
            println!("    stats: {}", group.stats());
        }
        group.shutdown();
        rt.shutdown();
        (
            best,
            1e9 / best,
            hist.percentile(50.0),
            hist.percentile(99.0),
        )
    }

    /// A serial managed object whose body burns a couple of microseconds,
    /// so a 16-caller storm genuinely outruns the manager. With `shed` the
    /// intake ring is capped at 4 and overflow is answered `Overloaded`;
    /// without it callers park until the manager catches up (backpressure).
    fn storm_object(rt: &Runtime, shed: bool) -> ObjectHandle {
        let mut b = ObjectBuilder::new("Storm")
            .entry(
                EntryDef::new("Work")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(|_ctx, args| {
                        for i in 0..2_000u64 {
                            std::hint::black_box(i);
                        }
                        Ok(argv![args[0].clone()])
                    }),
            )
            .manager(|mgr| loop {
                let acc = mgr.accept("Work")?;
                mgr.execute(acc)?;
            });
        if shed {
            b = b.admission(AdmissionPolicy::ShedNewest).intake_capacity(4);
        }
        b.spawn(rt).unwrap()
    }

    /// 16-caller overload storm: every caller fires `per_caller` calls and
    /// every call gets an *answer* — either a completed body or, under
    /// ShedNewest, an immediate `Overloaded`. Returns best-of-`reps`
    /// (ns per answered call, answered calls/s, completed, shed) — the
    /// completed/shed split is from the best rep.
    fn overload_storm(
        shed: bool,
        callers: u32,
        per_caller: u64,
        reps: u32,
    ) -> (f64, f64, u64, u64) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let rt = Runtime::threaded();
        let obj = storm_object(&rt, shed);
        let id = obj.entry_id("Work").unwrap();
        for _ in 0..per_caller {
            obj.call_id(id, argv![7i64]).unwrap(); // warm up
        }
        let mut best = (f64::INFINITY, 0.0, 0, 0);
        for _ in 0..reps {
            let done = Arc::new(AtomicU64::new(0));
            let dropped = Arc::new(AtomicU64::new(0));
            let t0 = Instant::now();
            let hs: Vec<_> = (0..callers)
                .map(|c| {
                    let o2 = obj.clone();
                    let (d2, s2) = (Arc::clone(&done), Arc::clone(&dropped));
                    rt.spawn_with(Spawn::new(format!("storm-{c}")), move || {
                        for _ in 0..per_caller {
                            match o2.call_id(id, argv![7i64]) {
                                Ok(_) => {
                                    d2.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(AlpsError::Overloaded { .. }) => {
                                    s2.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("storm caller: {e}"),
                            }
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let total = callers as u64 * per_caller;
            let ns = t0.elapsed().as_nanos() as f64 / total as f64;
            if ns < best.0 {
                best = (
                    ns,
                    1e9 / ns,
                    done.load(Ordering::Relaxed),
                    dropped.load(Ordering::Relaxed),
                );
            }
        }
        obj.shutdown();
        rt.shutdown();
        best
    }

    pub fn run(smoke: bool) {
        let scale = |iters: u64| if smoke { (iters / 20).max(8) } else { iters };
        let mut call_protocol = Vec::new();

        println!("call_protocol:");
        for (label_str, label_id, mk) in [
            (
                "managed_execute/call_str",
                "managed_execute/call_id",
                managed_echo as fn(&Runtime) -> ObjectHandle,
            ),
            (
                "implicit_start/call_str",
                "implicit_start/call_id",
                implicit_echo as fn(&Runtime) -> ObjectHandle,
            ),
            (
                "combining/call_str",
                "combining/call_id",
                combining_echo as fn(&Runtime) -> ObjectHandle,
            ),
        ] {
            let iters = scale(if label_str.starts_with("implicit") {
                200_000
            } else {
                20_000
            });
            let rt = Runtime::threaded();
            let obj = mk(&rt);
            call_protocol.push(sample(label_str, iters, || {
                obj.call("Echo", vals![7i64]).unwrap();
            }));
            let id = obj.entry_id("Echo").unwrap();
            call_protocol.push(sample(label_id, iters, || {
                obj.call_id(id, argv![7i64]).unwrap();
            }));
            obj.shutdown();
            rt.shutdown();
        }

        println!("bounded_buffer:");
        const BATCH: i64 = 200;
        let mut bounded = Vec::new();
        {
            let rt = Runtime::threaded();
            let buf = AlpsBuffer::spawn(&rt, 16).unwrap();
            // The comparison baseline — the seed's string-resolving
            // `call(&str)` protocol — re-measured in this same run on the
            // same build and machine, so the reported speedup can never
            // drift as the machine or surrounding code changes.
            let mut s0 = sample("alps_manager/transfer_call_str", scale(50), || {
                let (o2, rt2) = (buf.object().clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    let _ = rt2;
                    for i in 0..BATCH {
                        o2.call("Deposit", vals![i]).unwrap();
                    }
                });
                for _ in 0..BATCH {
                    buf.object().call("Remove", vec![]).unwrap();
                }
                p.join().unwrap();
            });
            s0.ns_per_op /= BATCH as f64;
            s0.ops_per_sec *= BATCH as f64;
            bounded.push(s0);
            let mut s = sample("alps_manager/transfer", scale(50), || {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..BATCH {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                for _ in 0..BATCH {
                    buf.remove(&rt).unwrap();
                }
                p.join().unwrap();
            });
            // Per-element numbers are what E1 reports.
            s.ns_per_op /= BATCH as f64;
            s.ops_per_sec *= BATCH as f64;
            bounded.push(s);
            buf.object().shutdown();
            rt.shutdown();
        }

        // Contended intake: 1/4/16 concurrent callers per managed object.
        // With one caller this is plain round-trip latency; with many, the
        // manager's batch drain amortises wakeups across every queued call
        // and the combining manager replies in-line, so aggregate
        // throughput should rise well past the single-caller figure.
        println!("manager_batch:");
        // (callers, ns_per_op, ops_per_sec, p50_ns, p99_ns) rows per
        // scenario label.
        type BatchRows = Vec<(u32, f64, f64, u64, u64)>;
        let reps = if smoke { 1 } else { 5 };
        let caller_counts: [u32; 3] = [1, 4, 16];
        let mut batch: Vec<(&str, BatchRows)> = Vec::new();
        for (label, mk) in [
            (
                "managed_execute",
                managed_echo as fn(&Runtime) -> ObjectHandle,
            ),
            ("combining", combining_echo as fn(&Runtime) -> ObjectHandle),
        ] {
            let mut rows = Vec::new();
            for callers in caller_counts {
                // 1-caller matches the sample() iteration count (it is
                // the latency figure compared against PR-1); multi-caller
                // rounds split a fixed op budget so spawn/join cost stays
                // amortised.
                let per_caller = if callers == 1 {
                    scale(20_000)
                } else {
                    scale(4_000) / callers as u64
                };
                let r = contended(mk, callers, per_caller, reps, false);
                println!(
                    "  {label}/callers_{callers}: {:.0} ns/op ({:.0} ops/s, p50 {} p99 {})",
                    r.ns_per_op, r.ops_per_sec, r.p50_ns, r.p99_ns
                );
                rows.push((callers, r.ns_per_op, r.ops_per_sec, r.p50_ns, r.p99_ns));
            }
            batch.push((label, rows));
        }

        // The contended rows compare against this run's own 1-caller
        // figures and the string-resolving `call(&str)` latency measured
        // minutes ago in the call_protocol section — never against
        // constants captured on another commit or machine, which drift
        // stale as the code and hardware move.
        let row = |label: &str, callers: u32| -> (f64, f64) {
            batch
                .iter()
                .find(|(l, _)| *l == label)
                .and_then(|(_, rows)| rows.iter().find(|(c, ..)| *c == callers))
                .map(|&(_, ns, ops, _, _)| (ns, ops))
                .unwrap()
        };
        let single = |n: &str| -> f64 {
            call_protocol
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.ns_per_op)
                .unwrap()
        };
        let base_managed = single("managed_execute/call_str");
        let base_combining = single("combining/call_str");
        let sp_batch_managed = base_managed / row("managed_execute", 1).0;
        let sp_batch_combining = base_combining / row("combining", 1).0;
        let managed_16_over_1 = row("managed_execute", 16).1 / row("managed_execute", 1).1;
        let combining_16_over_1 = row("combining", 16).1 / row("combining", 1).1;

        let mut bjson = String::from("{\n  \"bench\": \"manager_batch\",\n");
        bjson.push_str("  \"baseline_remeasured\": true,\n");
        bjson.push_str(
            "  \"unit\": {\"ns_per_op\": \"wall nanoseconds per call across all callers (best of reps)\", \"ops_per_sec\": \"aggregate calls per second\", \"p50_ns/p99_ns\": \"caller-side round-trip latency percentiles, pooled over all reps\"},\n",
        );
        for (label, rows) in &batch {
            bjson.push_str(&format!("  \"{label}\": {{\n"));
            for (i, (callers, ns, ops, p50, p99)) in rows.iter().enumerate() {
                bjson.push_str(&format!(
                    "    \"callers_{callers}\": {{\"ns_per_op\": {ns:.1}, \"ops_per_sec\": {ops:.0}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}}{}\n",
                    if i + 1 == rows.len() { "" } else { "," }
                ));
            }
            bjson.push_str("  },\n");
        }
        bjson.push_str(&format!(
            "  \"baseline\": {{\"note\": \"string-resolving call(&str) latency re-measured in this run (call_protocol section, same build/machine)\", \"managed_execute_ns\": {base_managed:.1}, \"combining_ns\": {base_combining:.1}}},\n"
        ));
        bjson.push_str(&format!(
            "  \"speedup_1_caller_vs_baseline\": {{\"managed_execute\": {sp_batch_managed:.2}, \"combining\": {sp_batch_combining:.2}}},\n"
        ));
        bjson.push_str(&format!(
            "  \"throughput_16_callers_over_1\": {{\"managed_execute\": {managed_16_over_1:.2}, \"combining\": {combining_16_over_1:.2}}}\n}}\n"
        ));
        std::fs::write("BENCH_manager_batch.json", &bjson).expect("write BENCH_manager_batch.json");
        println!(
            "speedups (1 caller vs same-run call_str baseline): managed {sp_batch_managed:.2}x, combining {sp_batch_combining:.2}x"
        );
        println!(
            "throughput, 16 callers vs 1: managed {managed_16_over_1:.2}x, combining {combining_16_over_1:.2}x"
        );
        println!("wrote BENCH_manager_batch.json");

        // Overload: the same 16-caller storm against a deliberately slow
        // serial manager, once with Block (every call parks until served)
        // and once with ShedNewest (ring capped at 4, overflow answered
        // Overloaded immediately). Shedding trades completed work for
        // bounded time-to-answer, so answered-calls/s should be at least
        // the Block figure and the shed split nonzero.
        println!("overload:");
        let per_caller = scale(4_000) / 16;
        let (blk_ns, blk_ops, blk_done, blk_shed) = overload_storm(false, 16, per_caller, reps);
        println!(
            "  block/callers_16: {blk_ns:.0} ns/answer ({blk_ops:.0} answers/s, {blk_done} completed, {blk_shed} shed)"
        );
        let (sh_ns, sh_ops, sh_done, sh_shed) = overload_storm(true, 16, per_caller, reps);
        println!(
            "  shed_newest/callers_16: {sh_ns:.0} ns/answer ({sh_ops:.0} answers/s, {sh_done} completed, {sh_shed} shed)"
        );
        let total = 16 * per_caller;
        let shed_frac = sh_shed as f64 / total as f64;
        let answered_speedup = sh_ops / blk_ops;
        let mut ojson = String::from("{\n  \"bench\": \"overload\",\n");
        // `block` is the comparison baseline, measured seconds earlier in
        // this same run.
        ojson.push_str("  \"baseline_remeasured\": true,\n");
        ojson.push_str(
            "  \"unit\": {\"ns_per_answer\": \"wall nanoseconds per answered call (completed or shed) across 16 callers\", \"answers_per_sec\": \"aggregate answered calls per second\"},\n",
        );
        ojson.push_str(&format!(
            "  \"block\": {{\"ns_per_answer\": {blk_ns:.1}, \"answers_per_sec\": {blk_ops:.0}, \"completed\": {blk_done}, \"shed\": {blk_shed}}},\n"
        ));
        ojson.push_str(&format!(
            "  \"shed_newest\": {{\"ns_per_answer\": {sh_ns:.1}, \"answers_per_sec\": {sh_ops:.0}, \"completed\": {sh_done}, \"shed\": {sh_shed}, \"intake_capacity\": 4}},\n"
        ));
        ojson.push_str(&format!(
            "  \"shed_fraction\": {shed_frac:.3},\n  \"answered_throughput_shed_over_block\": {answered_speedup:.2}\n}}\n"
        ));
        std::fs::write("BENCH_overload.json", &ojson).expect("write BENCH_overload.json");
        println!(
            "overload, 16 callers: shed_newest answers {answered_speedup:.2}x faster than block ({:.0}% shed)",
            shed_frac * 100.0
        );
        println!("wrote BENCH_overload.json");

        // Sharded object groups on the work-stealing pool executor: 16
        // green callers read a hot set of 4 keys, body cost a few µs of
        // CPU, shard count swept over {1, 2, 4, 8}. `managed_execute`
        // rows issue plain routed calls (every call executes a body);
        // `combined_read` rows go through `call_id_combined`, which
        // dedupes duplicate in-flight reads on the caller side before
        // they reach any shard's intake. The body is a 100µs modeled
        // I/O wait (the paper's §2.7.1 dictionary is a disk lookup), so
        // even on this single-CPU container both mechanisms show
        // honestly: a 1-shard manager serializes every wait (`execute`
        // blocks the manager for the body), S shards overlap up to S
        // waits for distinct keys, and combining removes the duplicated
        // waits for the same key altogether.
        println!("sharding:");
        let sh_callers: u32 = 16;
        let sh_per_caller = scale(4_000) / u64::from(sh_callers);
        let shard_counts: [usize; 4] = [1, 2, 4, 8];
        // (shards, ns/op, ops/s, p50_ns, p99_ns)
        type ShardRow = (usize, f64, f64, u64, u64);
        let mut shard_rows: Vec<(&str, Vec<ShardRow>)> = Vec::new();
        for (label, combined) in [("managed_execute", false), ("combined_read", true)] {
            let mut rows = Vec::new();
            for shards in shard_counts {
                let (ns, ops, p50, p99) =
                    sharded_hot_read(shards, sh_callers, sh_per_caller, reps, combined);
                println!("  {label}/shards_{shards}: {ns:.0} ns/op ({ops:.0} ops/s, p50 {p50} p99 {p99})");
                rows.push((shards, ns, ops, p50, p99));
            }
            shard_rows.push((label, rows));
        }
        let srow = |label: &str, shards: usize| -> (f64, f64) {
            shard_rows
                .iter()
                .find(|(l, _)| *l == label)
                .and_then(|(_, rows)| rows.iter().find(|(s, ..)| *s == shards))
                .map(|&(_, ns, ops, _, _)| (ns, ops))
                .unwrap()
        };
        let sharding_speedup = srow("combined_read", 8).1 / srow("managed_execute", 1).1;
        let mut sjson = String::from("{\n  \"bench\": \"sharding\",\n");
        // The 1-shard managed rows are the comparison baseline, measured
        // in this same run.
        sjson.push_str("  \"baseline_remeasured\": true,\n");
        sjson.push_str(
            "  \"unit\": {\"ns_per_op\": \"wall nanoseconds per read across all callers (best of reps)\", \"ops_per_sec\": \"aggregate reads per second\", \"p50_ns/p99_ns\": \"caller-side round-trip latency percentiles, pooled over all reps\"},\n",
        );
        sjson.push_str(&format!(
            "  \"workload\": {{\"callers\": {sh_callers}, \"hot_keys\": {HOT_KEYS}, \"executor\": \"thread_pool(4)\", \"body\": \"100us modeled I/O wait + echo (dictionary-lookup-sized read)\"}},\n"
        ));
        for (label, rows) in &shard_rows {
            sjson.push_str(&format!("  \"{label}\": {{\n"));
            for (i, (shards, ns, ops, p50, p99)) in rows.iter().enumerate() {
                sjson.push_str(&format!(
                    "    \"shards_{shards}\": {{\"ns_per_op\": {ns:.1}, \"ops_per_sec\": {ops:.0}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}}{}\n",
                    if i + 1 == rows.len() { "" } else { "," }
                ));
            }
            sjson.push_str("  },\n");
        }
        sjson.push_str(&format!(
            "  \"note\": \"body is a modeled I/O wait, so the ratio composes I/O overlap across shards with duplicate waits removed by cross-shard combining; measured on a single-CPU container (CPU-parallel speedup would come on top)\",\n  \"speedup_8_shard_combined_over_1_shard_managed\": {sharding_speedup:.2}\n}}\n"
        ));
        std::fs::write("BENCH_sharding.json", &sjson).expect("write BENCH_sharding.json");
        println!(
            "sharding, 16 callers: 8-shard combined reads {sharding_speedup:.2}x the 1-shard managed baseline"
        );
        println!("wrote BENCH_sharding.json");

        // Baselines are never imported across runs: the comparison point
        // — the string-resolving `call(&str)` protocol, which is what the
        // seed's call path did on every call — is re-measured above in
        // this same process, on this build and machine. (Earlier PRs
        // compared against constants captured at older commits; those
        // drifted stale the moment the machine or surrounding code
        // changed.)
        let find = |n: &str| -> f64 {
            call_protocol
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.ns_per_op)
                .unwrap()
        };
        let sp_managed = find("managed_execute/call_str") / find("managed_execute/call_id");
        let sp_implicit = find("implicit_start/call_str") / find("implicit_start/call_id");
        let sp_combining = find("combining/call_str") / find("combining/call_id");
        let bfind = |n: &str| -> f64 {
            bounded
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.ops_per_sec)
                .unwrap()
        };
        let sp_bounded = bfind("alps_manager/transfer") / bfind("alps_manager/transfer_call_str");

        let mut json = String::from("{\n  \"bench\": \"call_protocol\",\n");
        json.push_str("  \"baseline_remeasured\": true,\n");
        json.push_str(
            "  \"unit\": {\"ns_per_op\": \"nanoseconds per call\", \"ops_per_sec\": \"calls per second\"},\n",
        );
        for (group, samples) in [
            ("call_protocol", &call_protocol),
            ("bounded_buffer", &bounded),
        ] {
            json.push_str(&format!("  \"{group}\": {{\n"));
            for (i, s) in samples.iter().enumerate() {
                json.push_str(&format!(
                    "    \"{}\": {{\"ns_per_op\": {:.1}, \"ops_per_sec\": {:.0}}}{}\n",
                    s.name,
                    s.ns_per_op,
                    s.ops_per_sec,
                    if i + 1 == samples.len() { "" } else { "," }
                ));
            }
            json.push_str("  },\n");
        }
        json.push_str(
            "  \"baseline\": {\"note\": \"the call_str rows above: the string-resolving call(&str) protocol (the seed's call path), re-measured in this run on the same build/machine\"},\n",
        );
        json.push_str(&format!(
            "  \"speedup_call_id_over_call_str\": {{\"managed_execute\": {sp_managed:.2}, \"implicit_start\": {sp_implicit:.2}, \"combining\": {sp_combining:.2}, \"bounded_buffer_transfer\": {sp_bounded:.2}}}\n}}\n"
        ));

        std::fs::write("BENCH_call_protocol.json", &json).expect("write BENCH_call_protocol.json");
        println!(
            "speedups (call_id vs same-run call_str baseline): managed {sp_managed:.2}x, implicit {sp_implicit:.2}x, combining {sp_combining:.2}x, bounded transfer {sp_bounded:.2}x"
        );
        println!("wrote BENCH_call_protocol.json");
    }
}

/// `experiments lang-bench` — how close does compiled ALPS source get to
/// hand-written embedded objects, and how far ahead of the interpreter is
/// it? The headline scenario is the paper's bounded buffer moving real
/// messages: 4 producers and 4 consumers exchange 8-word messages
/// through a 256-slot in-place table (the §2.8.2 slot-table layout that
/// motivates the parallel buffer — long messages should not be copied),
/// run three ways in the same process:
///
/// * **interpreted** — `run_checked`, the tree-walking interpreter;
/// * **compiled** — `run_compiled`, the lowering pipeline emitting
///   direct `ObjectBuilder` objects with interned ids and flat frames;
/// * **embedded** — a hand-written `ObjectBuilder` object with the same
///   entries, manager, and slot table, driven by plain Rust processes.
///
/// The workload is where resolution pays: the interpreter's string-keyed
/// frames force a read-clone-write round trip over the whole table on
/// every `set`/`get`, while the compiled executor's resolved `VarRef`s
/// mutate the slot in place — same observable semantics, measured in the
/// same run (`baseline_remeasured`). The seven example programs also run
/// interpreted vs compiled end-to-end on the deterministic simulator.
/// Everything lands in `BENCH_lang_compile.json`.
mod lang_bench {
    use std::sync::Arc;
    use std::time::Instant;

    use alps_core::{EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
    use alps_lang::{check, parse, run_checked, run_compiled, Checked, Output};
    use alps_runtime::{Runtime, SimRuntime, Spawn};
    use parking_lot::Mutex;

    /// Slots in the buffer's message table.
    const CAP: usize = 256;
    /// Words per message.
    const WORDS: usize = 8;

    /// The bounded-buffer hot loop over real messages, parameterized by
    /// the par fan-out and the per-driver element count: `k` producers
    /// stamp and deposit 8-word messages, `k` consumers remove and
    /// checksum them, through one managed 256-slot in-place table.
    fn bounded_source(k: usize, n: u64) -> String {
        let branches = (0..k)
            .map(|_| format!("Drv.Produce({n})"))
            .chain((0..k).map(|_| format!("Drv.Consume({n})")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            r#"
object Buffer defines
  proc Deposit(M: list(int));
  proc Remove() returns (list(int));
end Buffer;
object Buffer implements
  var Store: list(list(int));
  var Scratch: list(int);
  var In: int;
  var Out: int;
  var k: int;

  proc Deposit(M: list(int));
  begin
    set(Store, In, M);
    In := (In + 1) mod {cap}
  end Deposit;

  proc Remove() returns (list(int));
  var M2: list(int);
  begin
    M2 := get(Store, Out);
    Out := (Out + 1) mod {cap};
    return (M2)
  end Remove;

  manager
    intercepts Deposit(list(int)), Remove;
    var Count: int;
    begin
      loop
        accept Deposit(M) when Count < {cap} =>
          execute Deposit(M);
          Count := Count + 1
      or
        accept Remove when Count > 0 =>
          execute Remove;
          Count := Count - 1
      end loop
    end;

  begin
    for k := 1 to {words} do push(Scratch, 0) end for;
    for k := 1 to {cap} do push(Store, Scratch) end for
  end Buffer;
object Drv defines
  proc Produce(n: int);
  proc Consume(n: int);
end Drv;
object Drv implements
  proc Produce[1..{k}](n: int);
  var i: int;
  var Msg: list(int);
  var crc: int;
  begin
    for i := 1 to {words} do push(Msg, 0) end for;
    for i := 1 to n do
      crc := (i * 31) mod 65521;
      set(Msg, 0, i);
      set(Msg, 1, crc);
      Buffer.Deposit(Msg)
    end for
  end Produce;
  proc Consume[1..{k}](n: int);
  var i: int;
  var Msg: list(int);
  var crc: int;
  begin
    for i := 1 to n do
      Msg := Buffer.Remove();
      crc := (get(Msg, 0) + get(Msg, 1)) mod 65521
    end for
  end Consume;
end Drv;
main begin
  par {branches} end par
end
"#,
            cap = CAP,
            words = WORDS,
            k = k,
            branches = branches
        )
    }

    fn run_lang(checked: &Arc<Checked>, compiled: bool) {
        let rt = Runtime::threaded();
        let (out, _buf) = Output::buffer();
        let c = Arc::clone(checked);
        if compiled {
            run_compiled(&rt, &c, out).expect("compiled run");
        } else {
            run_checked(&rt, &c, out).expect("interpreted run");
        }
        rt.shutdown();
    }

    /// The hand-written counterpart: the same object shape — intercepted
    /// Deposit/Remove, a counting manager, a `CAP`-slot message table
    /// written in place — built directly against `ObjectBuilder`.
    fn run_embedded(k: usize, n: u64) {
        let rt = Runtime::threaded();
        let store: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(
            (0..CAP)
                .map(|_| Value::List(vec![Value::Int(0); WORDS]))
                .collect(),
        ));
        let inp = Arc::new(Mutex::new(0usize));
        let outp = Arc::new(Mutex::new(0usize));
        let (s_dep, s_rem) = (Arc::clone(&store), Arc::clone(&store));
        let (i_dep, o_rem) = (Arc::clone(&inp), Arc::clone(&outp));
        let obj = ObjectBuilder::new("Buffer")
            .entry(
                EntryDef::new("Deposit")
                    .params([Ty::List(Box::new(Ty::Int))])
                    .intercepted()
                    .body(move |_ctx, args| {
                        let mut i = i_dep.lock();
                        s_dep.lock()[*i] = args[0].clone();
                        *i = (*i + 1) % CAP;
                        Ok(vec![])
                    }),
            )
            .entry(
                EntryDef::new("Remove")
                    .results([Ty::List(Box::new(Ty::Int))])
                    .intercepted()
                    .body(move |_ctx, _| {
                        let mut o = o_rem.lock();
                        let v = s_rem.lock()[*o].clone();
                        *o = (*o + 1) % CAP;
                        Ok(vec![v])
                    }),
            )
            .manager(move |mgr| {
                let mut count = 0usize;
                loop {
                    let sel = mgr.select(vec![
                        Guard::accept("Deposit").when(move |_| count < CAP),
                        Guard::accept("Remove").when(move |_| count > 0),
                    ])?;
                    match sel {
                        Selected::Accepted { guard, call } => {
                            let deposit = guard == 0;
                            mgr.execute(call)?;
                            if deposit {
                                count += 1;
                            } else {
                                count -= 1;
                            }
                        }
                        _ => unreachable!("only accept guards"),
                    }
                }
            })
            .spawn(&rt)
            .unwrap();
        let dep = obj.entry_id("Deposit").unwrap();
        let rem = obj.entry_id("Remove").unwrap();
        let mut hs = Vec::with_capacity(2 * k);
        for p in 0..k {
            let h = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("prod-{p}")), move || {
                let mut msg = vec![Value::Int(0); WORDS];
                for i in 1..=n as i64 {
                    let crc = (i * 31) % 65521;
                    msg[0] = Value::Int(i);
                    msg[1] = Value::Int(crc);
                    h.call_id(dep, vec![Value::List(msg.clone())]).unwrap();
                }
            }));
        }
        for c in 0..k {
            let h = obj.clone();
            hs.push(rt.spawn_with(Spawn::new(format!("cons-{c}")), move || {
                for _ in 0..n {
                    let r = h.call_id(rem, vec![]).unwrap();
                    let msg = r.as_slice()[0].as_list().unwrap();
                    let _ = (msg[0].as_int().unwrap() + msg[1].as_int().unwrap()) % 65521;
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        obj.shutdown();
        rt.shutdown();
    }

    struct Tri {
        interpreted: f64,
        compiled: f64,
        embedded: f64,
    }

    /// Measure the three modes interleaved round-robin (so slow drift in
    /// machine load hits every mode equally), best of `reps` cycles plus
    /// one warm-up cycle, wall nanoseconds per element for one full
    /// program run (spawn, transfer, teardown) on the threaded runtime.
    fn bounded_tri(k: usize, n: u64, reps: u32) -> Tri {
        let src = bounded_source(k, n);
        let checked = Arc::new(check(parse(&src).expect("parse")).expect("check"));
        let elems = k as u64 * n;
        let mut best = [f64::INFINITY; 3];
        for _ in 0..=reps {
            for (mi, mode) in ["interpreted", "compiled", "embedded"].iter().enumerate() {
                let t0 = Instant::now();
                match *mode {
                    "interpreted" => run_lang(&checked, false),
                    "compiled" => run_lang(&checked, true),
                    _ => run_embedded(k, n),
                }
                best[mi] = best[mi].min(t0.elapsed().as_nanos() as f64 / elems as f64);
            }
        }
        for (mi, mode) in ["interpreted", "compiled", "embedded"].iter().enumerate() {
            println!("  bounded k={k}/{mode}: {:.0} ns/elem", best[mi]);
        }
        Tri {
            interpreted: best[0],
            compiled: best[1],
            embedded: best[2],
        }
    }

    pub fn run(smoke: bool) {
        let (n, reps) = if smoke { (400, 2) } else { (3_000, 4) };

        println!("lang_compile (bounded-buffer message hot loop, threaded runtime):");
        let contended = bounded_tri(4, n, reps);
        let single = bounded_tri(1, n, reps);

        // The seven example programs, end-to-end on the deterministic
        // simulator (parse/check hoisted out; spawn + run + teardown
        // timed). Wall time per full program run, best of reps.
        println!("examples (SimRuntime, whole-program wall time):");
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/alps");
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .expect("examples/alps")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "alps"))
            .collect();
        paths.sort();
        let mut examples = Vec::new();
        for path in &paths {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(path).expect("read example");
            let checked = Arc::new(check(parse(&src).expect("parse")).expect("check"));
            let time_mode = |compiled: bool| -> f64 {
                let mut best = f64::INFINITY;
                for _ in 0..=reps {
                    let c = Arc::clone(&checked);
                    let (out, _buf) = Output::buffer();
                    let t0 = Instant::now();
                    let sim = SimRuntime::new();
                    sim.run(move |rt| {
                        if compiled {
                            run_compiled(rt, &c, out).expect("run")
                        } else {
                            run_checked(rt, &c, out).expect("run")
                        }
                    })
                    .expect("sim");
                    best = best.min(t0.elapsed().as_nanos() as f64 / 1_000.0);
                }
                best
            };
            let us_interp = time_mode(false);
            let us_compiled = time_mode(true);
            println!(
                "  {name}: interpreted {us_interp:.0} us, compiled {us_compiled:.0} us ({:.2}x)",
                us_interp / us_compiled
            );
            examples.push((name, us_interp, us_compiled));
        }

        let compiled_over_embedded = contended.compiled / contended.embedded;
        let interp_over_compiled = contended.interpreted / contended.compiled;
        let targets_met = compiled_over_embedded <= 1.5 && interp_over_compiled >= 5.0;

        let mut json = String::from("{\n  \"bench\": \"lang_compile\",\n");
        json.push_str("  \"baseline_remeasured\": true,\n");
        json.push_str(
            "  \"unit\": {\"ns_per_elem\": \"wall nanoseconds per element moved through the buffer, whole run (spawn + transfer + teardown), best of reps\", \"us\": \"whole-program wall microseconds on SimRuntime, best of reps\"},\n",
        );
        json.push_str(&format!(
            "  \"workload\": {{\"elements_per_driver\": {n}, \"slot_table_capacity\": {CAP}, \"message_words\": {WORDS}, \"stamp\": \"producer writes seq + crc into words 0..2, consumer checksums them\", \"reps\": {reps}, \"measurement\": \"modes interleaved round-robin, best of reps\", \"runtime\": \"threaded\", \"smoke\": {smoke}}},\n"
        ));
        json.push_str(&format!(
            "  \"bounded_buffer_contended\": {{\"producers\": 4, \"consumers\": 4, \"interpreted_ns_per_elem\": {:.1}, \"compiled_ns_per_elem\": {:.1}, \"embedded_ns_per_elem\": {:.1}}},\n",
            contended.interpreted, contended.compiled, contended.embedded
        ));
        json.push_str(&format!(
            "  \"bounded_buffer_single\": {{\"producers\": 1, \"consumers\": 1, \"interpreted_ns_per_elem\": {:.1}, \"compiled_ns_per_elem\": {:.1}, \"embedded_ns_per_elem\": {:.1}}},\n",
            single.interpreted, single.compiled, single.embedded
        ));
        json.push_str("  \"examples\": {\n");
        for (i, (name, us_i, us_c)) in examples.iter().enumerate() {
            json.push_str(&format!(
                "    \"{name}\": {{\"interpreted_us\": {us_i:.1}, \"compiled_us\": {us_c:.1}, \"speedup\": {:.2}}}{}\n",
                us_i / us_c,
                if i + 1 == examples.len() { "" } else { "," }
            ));
        }
        json.push_str("  },\n");
        json.push_str(&format!(
            "  \"ratios\": {{\"compiled_over_embedded\": {compiled_over_embedded:.3}, \"interpreted_over_compiled\": {interp_over_compiled:.2}}},\n"
        ));
        json.push_str(&format!(
            "  \"targets\": {{\"compiled_over_embedded_max\": 1.5, \"interpreted_over_compiled_min\": 5.0, \"met\": {targets_met}}}\n}}\n"
        ));
        std::fs::write("BENCH_lang_compile.json", &json).expect("write BENCH_lang_compile.json");
        println!(
            "contended: compiled/embedded {compiled_over_embedded:.2} (target <= 1.5), interpreted/compiled {interp_over_compiled:.2}x (target >= 5)"
        );
        println!("wrote BENCH_lang_compile.json");
    }
}

/// `experiments traffic` — open-loop tail-latency harness.
///
/// Closed-loop benches (everything in `bench_json`) measure *service
/// capacity*: each caller waits for its reply before issuing the next
/// call, so queueing delay is bounded by the caller count and the tail
/// looks flattering. This harness is open-loop: arrivals follow a
/// precomputed Poisson (or bursty) schedule that does not slow down when
/// the system falls behind, and every call's latency is measured from its
/// *intended* arrival instant — a late dispatch counts against the
/// system, not the clock. Swept past saturation this produces the
/// textbook hockey stick in p99/p999.
///
/// Workload: Zipf-skewed integer keys over a sharded, supervised,
/// managed-execute group on the work-stealing pool executor. One
/// dispatcher process per shard replays that shard's slice of the
/// schedule (single dominant producer — the shape the adaptive SPSC lane
/// promotes on). Two configs run A/B:
///
/// * `pr5_defaults`  — lane promotion disabled, no worker-affinity hints
///   (the PR-5 behaviour);
/// * `lane_affinity` — adaptive SPSC lane + per-shard affinity hints (the
///   defaults after this change).
mod traffic {
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    use alps_core::{
        argv, EntryDef, ObjectBuilder, RestartPolicy, ShardedBuilder, ShardedHandle, Ty,
    };
    use alps_runtime::metrics::Histogram;
    use alps_runtime::{Runtime, Spawn};

    const SHARDS: usize = 4;
    const KEYS: usize = 64;
    const ZIPF_S: f64 = 1.0;

    /// xorshift64* — deterministic, seedable, good enough for schedules.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Rng {
            Rng(seed.max(1))
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in [0, 1).
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Zipf(s) CDF over `n` ranks, for inverse-transform sampling.
    fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        cdf
    }

    fn sample_cdf(cdf: &[f64], u: f64) -> usize {
        cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
    }

    /// One scheduled arrival: intended instant (ns from run start) and key.
    #[derive(Clone, Copy)]
    struct Arrival {
        at_ns: u64,
        key: i64,
    }

    /// Generate `n` arrivals at `rate` ops/s. `bursty` replaces the
    /// memoryless gaps with geometric bursts (1..=8 back-to-back arrivals
    /// per burst instant, gaps stretched to preserve the offered rate) —
    /// same mean load, much lumpier short-term demand.
    fn schedule(rng: &mut Rng, cdf: &[f64], rate: f64, n: usize, bursty: bool) -> Vec<Arrival> {
        let mean_gap_ns = 1e9 / rate;
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        let mut burst_left = 0u32;
        while out.len() < n {
            if bursty {
                if burst_left == 0 {
                    // Uniform burst size 1..=8, mean 4.5; scale the gap by
                    // the mean so the long-run rate stays `rate`.
                    burst_left = 1 + (rng.next_u64() % 8) as u32;
                    t += -(1.0 - rng.next_f64()).ln() * mean_gap_ns * 4.5;
                }
                burst_left -= 1;
            } else {
                t += -(1.0 - rng.next_f64()).ln() * mean_gap_ns;
            }
            let key = sample_cdf(cdf, rng.next_f64()) as i64;
            out.push(Arrival {
                at_ns: t as u64,
                key,
            });
        }
        out
    }

    /// The sharded supervised group under test. `lane`/`affinity` toggle
    /// this PR's two mechanisms independently of each other.
    fn spawn_group(rt: &Runtime, lane: bool, affinity: bool) -> ShardedHandle {
        ShardedBuilder::new("KV", SHARDS)
            .spread_affinity(affinity)
            .spawn(rt, |i| {
                let b = ObjectBuilder::new(format!("KV#{i}"))
                    .entry(
                        EntryDef::new("Get")
                            .params([Ty::Int])
                            .results([Ty::Int])
                            .intercepted()
                            .body(|_ctx, args| {
                                // A few hundred ns of CPU — a cache-warm
                                // table lookup, small enough that protocol
                                // overhead dominates the tail.
                                for i in 0..200u64 {
                                    std::hint::black_box(i);
                                }
                                Ok(argv![args[0].clone()])
                            }),
                    )
                    .manager(|mgr| loop {
                        let acc = mgr.accept("Get")?;
                        mgr.execute(acc)?;
                    })
                    .supervise(RestartPolicy::RestartTransient {
                        max_restarts: 3,
                        window_ticks: 1_000_000,
                    });
                if lane {
                    b
                } else {
                    // `u32::MAX` keeps the intake-ring streak from ever
                    // reaching the promotion threshold.
                    b.lane_promote_after(u32::MAX)
                }
            })
            .unwrap()
    }

    /// Tail summary of one run.
    struct RunResult {
        offered: f64,
        achieved: f64,
        p50_ns: u64,
        p99_ns: u64,
        p999_ns: u64,
        mean_ns: f64,
        max_ns: u64,
        lane_promotes: u64,
        lane_pushes: u64,
    }

    /// Replay `arrivals` against a fresh group: one dispatcher process per
    /// shard walks its shard's slice of the schedule in intended-time
    /// order, firing each call as soon as the wall clock passes its
    /// arrival instant (immediately, if the dispatcher is already late —
    /// the lateness is the system's problem and lands in the histogram).
    /// Worker threads for the sweep: one per shard, but never more than
    /// the machine's CPUs — on a single-CPU container extra workers only
    /// add kernel-timeslice ping-pong between busy loops (ms-scale noise
    /// that would swamp the µs-scale tail being measured), while one
    /// worker keeps every yield a user-space runqueue rotation.
    fn workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(SHARDS)
    }

    fn run_once(lane: bool, affinity: bool, arrivals: &[Arrival], offered: f64) -> RunResult {
        let rt = Runtime::thread_pool(workers());
        let group = spawn_group(&rt, lane, affinity);

        // Partition the schedule by routing shard, preserving time order.
        let mut per_shard: Vec<Vec<Arrival>> = vec![Vec::new(); SHARDS];
        for a in arrivals {
            per_shard[group.shard_for_key(a.key as u64)].push(*a);
        }

        let ready = Arc::new(AtomicU32::new(0));
        let go = Arc::new(AtomicBool::new(false));
        let start_ns = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Histogram::new());
        let t0 = Instant::now();

        let hs: Vec<_> = per_shard
            .into_iter()
            .enumerate()
            .map(|(si, slice)| {
                let shard = group.shard(si).clone();
                let rt2 = rt.clone();
                let (ready2, go2) = (Arc::clone(&ready), Arc::clone(&go));
                let (start2, hist2) = (Arc::clone(&start_ns), Arc::clone(&hist));
                rt.spawn_with(Spawn::new(format!("dispatch-{si}")), move || {
                    let id = shard.entry_id("Get").unwrap();
                    // Warm the shard closed-loop: recycles cells, trains
                    // the EWMA, and (when enabled) builds the same-producer
                    // streak past the promotion threshold.
                    for _ in 0..64 {
                        shard.call_id(id, argv![0i64]).unwrap();
                    }
                    ready2.fetch_add(1, Ordering::SeqCst);
                    while !go2.load(Ordering::Acquire) {
                        rt2.yield_now();
                    }
                    let base = start2.load(Ordering::Acquire);
                    for a in &slice {
                        let due = base + a.at_ns;
                        loop {
                            let now = t0.elapsed().as_nanos() as u64;
                            if now >= due {
                                break;
                            }
                            // Sleep through long gaps (frees the core —
                            // the whole sweep shares one CPU with the
                            // managers), spin-yield only near the due
                            // instant.
                            let gap = due - now;
                            if gap > 200_000 {
                                rt2.sleep((gap / 2_000).max(1));
                            } else {
                                rt2.yield_now();
                            }
                        }
                        shard.call_id(id, argv![a.key]).unwrap();
                        let done = t0.elapsed().as_nanos() as u64;
                        hist2.record(done.saturating_sub(due).max(1));
                    }
                })
            })
            .collect();

        while ready.load(Ordering::SeqCst) < SHARDS as u32 {
            std::thread::yield_now();
        }
        start_ns.store(
            t0.elapsed().as_nanos() as u64 + 1_000_000,
            Ordering::Release,
        );
        let wall0 = Instant::now();
        go.store(true, Ordering::Release);
        for h in hs {
            h.join().unwrap();
        }
        let wall = wall0.elapsed().as_secs_f64() - 0.001; // minus the 1ms gate offset
        let achieved = arrivals.len() as f64 / wall.max(1e-9);

        let (mut lane_promotes, mut lane_pushes) = (0u64, 0u64);
        for si in 0..SHARDS {
            let s = group.shard(si).stats();
            lane_promotes += s.lane_promotes();
            lane_pushes += s.lane_pushes();
        }
        let res = RunResult {
            offered,
            achieved,
            p50_ns: hist.percentile(50.0),
            p99_ns: hist.percentile(99.0),
            p999_ns: hist.percentile(99.9),
            mean_ns: hist.mean(),
            max_ns: hist.max(),
            lane_promotes,
            lane_pushes,
        };
        group.shutdown();
        rt.shutdown();
        res
    }

    /// Calibrate saturation by running the very same open-loop machinery
    /// at an unattainable offered rate: every arrival is due immediately,
    /// the dispatchers degenerate to closed loops, and the achieved rate
    /// *is* the sustainable capacity of this topology on this machine —
    /// dispatch instrumentation, skewed shard mix, shared CPU and all.
    fn estimate_saturation(cdf: &[f64], probe_n: usize) -> f64 {
        let mut rng = Rng::new(0x5EED_CA11);
        let arrivals = schedule(&mut rng, cdf, 100.0e6, probe_n, false);
        run_once(true, true, &arrivals, 100.0e6).achieved
    }

    pub fn run(smoke: bool) {
        let cdf = zipf_cdf(KEYS, ZIPF_S);
        let probe_n = if smoke { 2_000 } else { 20_000 };
        let sat = estimate_saturation(&cdf, probe_n);
        println!("traffic: estimated saturation ≈ {sat:.0} offered ops/s");

        // Offered-load sweep as fractions of estimated saturation —
        // deliberately past 1.0 so the tail blowup is on the record.
        let fractions: &[f64] = if smoke {
            &[0.5, 2.0]
        } else {
            &[0.5, 0.8, 1.2, 2.0]
        };
        let dur_s = if smoke { 0.05 } else { 0.5 };
        let processes: &[(&str, bool)] = if smoke {
            &[("poisson", false)]
        } else {
            &[("poisson", false), ("bursty", true)]
        };
        let configs: [(&str, bool, bool); 2] = [
            ("pr5_defaults", false, false),
            ("lane_affinity", true, true),
        ];

        let mut json = String::from("{\n  \"bench\": \"traffic\",\n");
        // The pr5_defaults configuration is the comparison baseline,
        // swept in this same run.
        json.push_str("  \"baseline_remeasured\": true,\n");
        json.push_str(
            "  \"unit\": {\"latency_ns\": \"completion minus intended arrival (open-loop: dispatcher lateness included)\", \"offered_ops_per_sec\": \"scheduled arrival rate\", \"achieved_ops_per_sec\": \"completions over wall time\"},\n",
        );
        json.push_str(&format!(
            "  \"workload\": {{\"shards\": {SHARDS}, \"keys\": {KEYS}, \"zipf_s\": {ZIPF_S}, \"executor\": \"thread_pool({})\", \"supervised\": \"RestartTransient(3, 1e6 ticks)\", \"body\": \"~200-iteration CPU spin + echo\", \"dispatchers\": \"one per shard (single dominant producer)\"}},\n",
            workers()
        ));
        json.push_str(&format!(
            "  \"estimated_saturation_ops_per_sec\": {sat:.0},\n"
        ));

        // Per-config Poisson results at every fraction, for the headline
        // A/B comparison: (config, fraction, p50, p99, achieved).
        let mut headline: Vec<(&str, f64, u64, u64, f64)> = Vec::new();

        for (cname, lane, affinity) in configs.iter() {
            println!("{cname}:");
            json.push_str(&format!("  \"{cname}\": {{\n"));
            for (pi, (pname, bursty)) in processes.iter().enumerate() {
                json.push_str(&format!("    \"{pname}\": {{\n"));
                for (fi, f) in fractions.iter().enumerate() {
                    let offered = sat * f;
                    let n = ((offered * dur_s) as usize).clamp(200, 300_000);
                    // Same seed for every config at a given (process,
                    // load): both sides replay the identical schedule.
                    let mut rng = Rng::new(0x5EED_0000 ^ ((pi as u64) << 8) ^ fi as u64);
                    let arrivals = schedule(&mut rng, &cdf, offered, n, *bursty);
                    let r = run_once(*lane, *affinity, &arrivals, offered);
                    println!(
                        "  {pname}/load_{f:.2}: offered {offered:.0}/s achieved {:.0}/s p50 {} p99 {} p999 {} (lane promotes {}, pushes {})",
                        r.achieved, r.p50_ns, r.p99_ns, r.p999_ns, r.lane_promotes, r.lane_pushes
                    );
                    if *pname == "poisson" {
                        headline.push((cname, *f, r.p50_ns, r.p99_ns, r.achieved));
                    }
                    json.push_str(&format!(
                        "      \"load_{f:.2}\": {{\"offered_ops_per_sec\": {:.0}, \"achieved_ops_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"mean_ns\": {:.0}, \"max_ns\": {}, \"arrivals\": {}, \"lane_promotes\": {}, \"lane_pushes\": {}}}{}\n",
                        r.offered,
                        r.achieved,
                        r.p50_ns,
                        r.p99_ns,
                        r.p999_ns,
                        r.mean_ns,
                        r.max_ns,
                        n,
                        r.lane_promotes,
                        r.lane_pushes,
                        if fi + 1 == fractions.len() { "" } else { "," }
                    ));
                }
                json.push_str(&format!(
                    "    }}{}\n",
                    if pi + 1 == processes.len() { "" } else { "," }
                ));
            }
            // A comma either way: the `headline` object follows the last
            // config block.
            json.push_str("  },\n");
        }

        // Headline: per-load p99 ratios (nothing cherry-picked), plus
        // the two figures that summarize the warm-path story — the
        // median at the lowest load (the per-call fast-path win, where
        // ms-scale scheduler noise has not swamped the signal) and
        // tail + sustained throughput at the top load (whether the
        // system bends or collapses past saturation).
        let pick = |cfg: &str, f: f64| {
            headline
                .iter()
                .find(|(n, hf, ..)| *n == cfg && (*hf - f).abs() < 1e-9)
                .map(|&(_, _, p50, p99, ach)| (p50, p99, ach))
                .unwrap_or((0, 0, 0.0))
        };
        let ratio = |pr5: u64, new: u64| {
            if new > 0 {
                pr5 as f64 / new as f64
            } else {
                0.0
            }
        };
        let by_load: Vec<String> = fractions
            .iter()
            .map(|f| {
                let (_, p99_a, _) = pick("pr5_defaults", *f);
                let (_, p99_b, _) = pick("lane_affinity", *f);
                format!(
                    "{{\"load\": {f:.2}, \"pr5_p99_ns\": {p99_a}, \"lane_affinity_p99_ns\": {p99_b}, \"p99_ratio\": {:.2}}}",
                    ratio(p99_a, p99_b)
                )
            })
            .collect();
        let lo = fractions[0];
        let hi = *fractions.last().unwrap();
        let (lo_p50_a, _, _) = pick("pr5_defaults", lo);
        let (lo_p50_b, _, _) = pick("lane_affinity", lo);
        let (_, hi_p99_a, hi_ach_a) = pick("pr5_defaults", hi);
        let (_, hi_p99_b, hi_ach_b) = pick("lane_affinity", hi);
        let ach_ratio = if hi_ach_a > 0.0 {
            hi_ach_b / hi_ach_a
        } else {
            0.0
        };
        json.push_str(&format!(
            "  \"headline\": {{\"note\": \"poisson, pr5_defaults over lane_affinity (ratios > 1 favor the lane+affinity path)\", \"p99_ratio_by_load\": [{}], \"p50_ratio_at_{lo:.2}x\": {:.2}, \"p99_ratio_at_{hi:.2}x\": {:.2}, \"achieved_ratio_at_{hi:.2}x\": {ach_ratio:.2}}}\n}}\n",
            by_load.join(", "),
            ratio(lo_p50_a, lo_p50_b),
            ratio(hi_p99_a, hi_p99_b),
        ));
        std::fs::write("BENCH_traffic.json", &json).expect("write BENCH_traffic.json");
        println!(
            "poisson headline: p50 @ {lo:.2}x pr5 {lo_p50_a} vs lane {lo_p50_b} ({:.2}x); p99 @ {hi:.2}x pr5 {hi_p99_a} vs lane {hi_p99_b} ({:.2}x); achieved @ {hi:.2}x {hi_ach_a:.0}/s vs {hi_ach_b:.0}/s ({ach_ratio:.2}x)",
            ratio(lo_p50_a, lo_p50_b),
            ratio(hi_p99_a, hi_p99_b),
        );
        println!("wrote BENCH_traffic.json");
    }
}

/// `experiments remote [--smoke]` — the partial-failure acceptance run:
/// a second OS process (this same binary in the `remote-server` role)
/// serves a Counter object over loopback TCP; the parent measures the
/// remote warm-call tax against an in-process managed baseline taken in
/// the *same run*, then drives a seeded transport-fault sweep and
/// verifies every faulted call resolved exactly once or errored cleanly.
/// Writes `BENCH_remote.json`.
mod remote {
    use std::collections::HashMap;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::process::{Child, Command, Stdio};
    use std::sync::Arc;
    use std::time::Instant;

    use alps_core::{
        vals, Backoff, EntryDef, Guard, ObjectBuilder, ObjectHandle, RestartPolicy, RetryPolicy,
        Selected, Ty, Value,
    };
    use alps_net::{NetFaultPlan, NetServer, ReconnectPolicy, RemoteHandle, TcpConnector};
    use alps_runtime::Runtime;
    use parking_lot::Mutex;

    /// The served object: `Bump(k)` increments key `k`'s tally and
    /// returns it, `Count(k)` reads it back — the read path is what lets
    /// the parent audit exactly-once execution across process and fault
    /// boundaries. Supervised (`RestartTransient`), managed, and booby-
    /// trapped: the first `Bump` of any key with `k % 29 == 7` panics
    /// BEFORE recording, so across the sweep the server restarts dozens
    /// of times mid-call and the remote retries must ride through
    /// `ObjectRestarting` over the wire (key 0, the latency key, never
    /// trips it). Intercepted + managed so the panic kills the manager —
    /// the restart sweep answers in-flight callers with the retryable
    /// `ObjectRestarting`, not the delivered `BodyFailed`.
    fn counter(rt: &Runtime) -> ObjectHandle {
        let counts: Arc<Mutex<HashMap<i64, i64>>> = Arc::new(Mutex::new(HashMap::new()));
        let seen: Arc<Mutex<std::collections::HashSet<i64>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        let (c_bump, c_read) = (Arc::clone(&counts), counts);
        ObjectBuilder::new("Counter")
            .entry(
                EntryDef::new("Bump")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |_ctx, args| {
                        let k = args[0].as_int()?;
                        if k % 29 == 7 && seen.lock().insert(k) {
                            panic!("injected first-sight crash for key {k}");
                        }
                        let mut m = c_bump.lock();
                        let n = m.entry(k).or_insert(0);
                        *n += 1;
                        Ok(vec![Value::Int(*n)])
                    }),
            )
            .entry(
                EntryDef::new("Count")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |_ctx, args| {
                        let k = args[0].as_int()?;
                        Ok(vec![Value::Int(
                            c_read.lock().get(&k).copied().unwrap_or(0),
                        )])
                    }),
            )
            .manager(|mgr| loop {
                match mgr.select(vec![Guard::accept("Bump"), Guard::accept("Count")])? {
                    Selected::Accepted { call, .. } => {
                        mgr.execute(call)?;
                    }
                    _ => unreachable!(),
                }
            })
            .supervise(RestartPolicy::RestartTransient {
                max_restarts: 256,
                window_ticks: 600_000_000,
            })
            .spawn(rt)
            .expect("spawn Counter")
    }

    /// Child role: serve on an ephemeral loopback port, announce it on
    /// stdout, park until the parent closes our stdin (so an abandoned
    /// child dies with its parent instead of leaking).
    pub fn serve_child() {
        let rt = Runtime::threaded();
        let obj = counter(&rt);
        let server = NetServer::new(&rt);
        server.register(&obj);
        let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");
        println!("PORT={}", addr.port());
        std::io::stdout().flush().ok();
        let mut sink = Vec::new();
        let _ = std::io::stdin().read_to_end(&mut sink); // blocks until parent exits
        server.shutdown();
        obj.shutdown();
    }

    fn spawn_server() -> (Child, String) {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .arg("remote-server")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn remote-server child");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let port: u16 = loop {
            match lines.next() {
                Some(Ok(l)) if l.starts_with("PORT=") => {
                    break l["PORT=".len()..].trim().parse().expect("child port")
                }
                Some(Ok(_)) => continue,
                _ => panic!("remote-server child exited before reporting its port"),
            }
        };
        (child, format!("127.0.0.1:{port}"))
    }

    /// Best-of-`reps` wall-clock ns/op for `iters` runs of `f`.
    fn measure<F: FnMut()>(iters: u64, reps: u32, mut f: F) -> f64 {
        for _ in 0..iters / 4 {
            f();
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        best
    }

    pub fn run(smoke: bool) {
        println!("== remote objects: warm-call overhead + transport-fault sweep ==");

        // -- Baseline: the same managed call served in-process, measured
        // in this run (never a stale constant).
        let rt = Runtime::threaded();
        let local_obj = counter(&rt);
        let bump_local = local_obj.entry_id("Bump").expect("local Bump id");
        let local_iters: u64 = if smoke { 2_000 } else { 40_000 };
        let local_ns = measure(local_iters, if smoke { 2 } else { 5 }, || {
            local_obj.call_id(bump_local, vals![0i64]).unwrap();
        });
        println!("  in-process managed call: {local_ns:.0} ns/op");

        // -- The second process.
        let (mut child, addr) = spawn_server();

        // -- Remote warm path: interned entry, live connection, loopback
        // TCP round trip per call.
        let client = RemoteHandle::new(&rt, "Counter", TcpConnector::new(addr.clone()));
        let bump = client.entry_id("Bump");
        let remote_iters: u64 = if smoke { 400 } else { 8_000 };
        let remote_ns = measure(remote_iters, if smoke { 2 } else { 5 }, || {
            client.call_id(&bump, vals![0i64]).unwrap();
        });
        let overhead = remote_ns / local_ns;
        println!("  remote warm call (TCP loopback, 2 processes): {remote_ns:.0} ns/op");
        println!("  overhead ratio: {overhead:.1}x");

        // -- Fault sweep: per-seed chaos plans (drops, delays, dups,
        // corruption, forced disconnects) against the SAME live server;
        // each call retries through transient faults, then a fault-free
        // connection audits the tally. Acceptance: every call resolved
        // exactly once or cleanly errored — zero lost replies, zero
        // double executions.
        let seeds: u64 = if smoke { 16 } else { 256 };
        let calls_per_seed: i64 = 6;
        let verify = RemoteHandle::new(&rt, "Counter", TcpConnector::new(addr.clone()));
        let count_entry = verify.entry_id("Count");
        let policy = RetryPolicy::new(8, 2_000_000).backoff(Backoff::ExpJitter {
            base: 200,
            cap: 5_000,
        });
        let (mut ok, mut clean_errors, mut lost_replies, mut double_execs) =
            (0u64, 0u64, 0u64, 0u64);
        let (mut reconnects, mut retries) = (0u64, 0u64);
        for seed in 0..seeds {
            let faulty = RemoteHandle::new(&rt, "Counter", TcpConnector::new(addr.clone()))
                .with_fault(NetFaultPlan::chaos(seed + 1))
                .with_reconnect(ReconnectPolicy {
                    max_attempts: 8,
                    base_ticks: 200,
                    cap_ticks: 5_000,
                });
            let fbump = faulty.entry_id("Bump");
            for i in 0..calls_per_seed {
                // Key 0 is the latency key; sweep keys are unique per
                // (seed, call) so the audit below is exact.
                let key = (seed as i64) * 1_000 + i + 1;
                let outcome = faulty.call_id_retry(&fbump, vals![key], policy);
                let tally = verify
                    .call_id_retry(&count_entry, vals![key], policy)
                    .expect("fault-free audit connection")[0]
                    .as_int()
                    .unwrap();
                match outcome {
                    Ok(_) => {
                        ok += 1;
                        if tally == 0 {
                            lost_replies += 1;
                            eprintln!("  LOST: seed {seed} key {key}: reply without execution");
                        }
                        if tally > 1 {
                            double_execs += 1;
                            eprintln!("  DOUBLE: seed {seed} key {key}: {tally} executions");
                        }
                    }
                    Err(_) => {
                        clean_errors += 1;
                        if tally > 1 {
                            double_execs += 1;
                            eprintln!(
                                "  DOUBLE: seed {seed} key {key}: errored yet ran {tally} times"
                            );
                        }
                    }
                }
            }
            let s = faulty.stats();
            reconnects += s.reconnects.get();
            retries += s.retries.get();
        }
        let total = seeds * calls_per_seed as u64;
        println!(
            "  sweep: {seeds} seeds x {calls_per_seed} calls = {total} calls -> {ok} ok, \
             {clean_errors} clean errors ({reconnects} reconnects, {retries} retries)"
        );
        println!("  lost replies: {lost_replies}   double executions: {double_execs}");

        // -- Emit BENCH_remote.json.
        let mut j = String::from("{\n");
        j.push_str("  \"bench\": \"remote_objects\",\n");
        j.push_str(&format!("  \"smoke\": {smoke},\n"));
        j.push_str(&format!("  \"local_ns_per_op\": {local_ns:.1},\n"));
        j.push_str(&format!("  \"remote_ns_per_op\": {remote_ns:.1},\n"));
        j.push_str(&format!("  \"overhead_ratio\": {overhead:.2},\n"));
        j.push_str("  \"sweep\": {\n");
        j.push_str(&format!("    \"seeds\": {seeds},\n"));
        j.push_str(&format!("    \"calls\": {total},\n"));
        j.push_str(&format!("    \"ok\": {ok},\n"));
        j.push_str(&format!("    \"clean_errors\": {clean_errors},\n"));
        j.push_str(&format!("    \"reconnects\": {reconnects},\n"));
        j.push_str(&format!("    \"retries\": {retries}\n"));
        j.push_str("  },\n");
        j.push_str(&format!("  \"lost_replies\": {lost_replies},\n"));
        j.push_str(&format!("  \"double_executions\": {double_execs},\n"));
        j.push_str("  \"baseline_remeasured\": true\n");
        j.push_str("}\n");
        std::fs::write("BENCH_remote.json", &j).expect("write BENCH_remote.json");
        println!("wrote BENCH_remote.json");

        // -- Tear down the child (dropping its stdin unblocks the park).
        drop(child.stdin.take());
        let _ = child.kill();
        let _ = child.wait();
        local_obj.shutdown();

        assert_eq!(lost_replies, 0, "acceptance: zero lost replies");
        assert_eq!(double_execs, 0, "acceptance: zero double executions");
    }
}
