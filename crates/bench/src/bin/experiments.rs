//! Regenerate the EXPERIMENTS.md tables.

use alps_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "all") {
        for r in experiments::all() {
            r.print();
        }
        return;
    }
    for a in &args {
        match experiments::by_id(a) {
            Some(r) => r.print(),
            None => {
                eprintln!("unknown experiment `{a}` (use e1..e10 or all)");
                std::process::exit(1);
            }
        }
    }
}
