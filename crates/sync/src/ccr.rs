//! Conditional critical regions (Brinch Hansen / Hoare) — the paper's §1
//! names CCRs alongside semaphores as the mechanisms ALPS deliberately
//! avoids for intra-object scheduling. Provided as a baseline.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use alps_runtime::{ProcId, Runtime};
use parking_lot::Mutex;

struct RegionSt<T> {
    busy: bool,
    data: T,
    waiters: VecDeque<ProcId>,
}

/// A shared variable accessible only inside `region … when B do S`
/// blocks: [`Region::await_then`] blocks until the predicate holds, then
/// runs the body atomically.
///
/// # Examples
///
/// ```
/// use alps_runtime::Runtime;
/// use alps_sync::Region;
///
/// let rt = Runtime::threaded();
/// let r = Region::new(5i32);
/// let doubled = r.await_then(&rt, |v| *v > 0, |v| {
///     *v *= 2;
///     *v
/// });
/// assert_eq!(doubled, 10);
/// rt.shutdown();
/// ```
pub struct Region<T> {
    st: Arc<Mutex<RegionSt<T>>>,
}

impl<T> Clone for Region<T> {
    fn clone(&self) -> Self {
        Region {
            st: Arc::clone(&self.st),
        }
    }
}

impl<T> fmt::Debug for Region<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        f.debug_struct("Region")
            .field("busy", &st.busy)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}

impl<T: Send> Region<T> {
    /// New region protecting `data`.
    pub fn new(data: T) -> Region<T> {
        Region {
            st: Arc::new(Mutex::new(RegionSt {
                busy: false,
                data,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// `region v when pred(v) do body(v)`: wait until the region is free
    /// *and* the predicate holds, then run the body atomically. Waiters
    /// are re-evaluated whenever a body completes (the state may have
    /// changed).
    pub fn await_then<R>(
        &self,
        rt: &Runtime,
        pred: impl Fn(&T) -> bool,
        body: impl FnOnce(&mut T) -> R,
    ) -> R {
        loop {
            {
                let mut st = self.st.lock();
                if !st.busy && pred(&st.data) {
                    st.busy = true;
                    let out = body(&mut st.data);
                    st.busy = false;
                    let ws: Vec<ProcId> = st.waiters.drain(..).collect();
                    drop(st);
                    for w in ws {
                        rt.unpark(w);
                    }
                    return out;
                }
                let me = rt.current();
                if !st.waiters.contains(&me) {
                    st.waiters.push_back(me);
                }
            }
            rt.park();
        }
    }

    /// Unconditional critical region (predicate `true`).
    pub fn with<R>(&self, rt: &Runtime, body: impl FnOnce(&mut T) -> R) -> R {
        self.await_then(rt, |_| true, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    #[test]
    fn unconditional_region_runs() {
        let rt = Runtime::threaded();
        let r = Region::new(0);
        r.with(&rt, |v| *v += 1);
        assert_eq!(r.with(&rt, |v| *v), 1);
    }

    #[test]
    fn conditional_region_waits_for_predicate() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let r = Region::new(0i64);
                let (r2, rt2) = (r.clone(), rt.clone());
                let h = rt.spawn_with(Spawn::new("consumer"), move || {
                    r2.await_then(&rt2, |v| *v > 0, |v| *v)
                });
                rt.yield_now(); // consumer blocks: predicate false
                r.with(rt, |v| *v = 9);
                h.join().unwrap()
            })
            .unwrap();
        assert_eq!(got, 9);
    }

    #[test]
    fn bounded_buffer_with_ccr() {
        let sim = SimRuntime::new();
        let out = sim
            .run(|rt| {
                let r = Region::new(std::collections::VecDeque::<i64>::new());
                let cap = 2usize;
                let (r2, rt2) = (r.clone(), rt.clone());
                let producer = rt.spawn_with(Spawn::new("producer"), move || {
                    for i in 0..8 {
                        r2.await_then(&rt2, |q| q.len() < cap, |q| q.push_back(i));
                    }
                });
                let mut out = Vec::new();
                for _ in 0..8 {
                    out.push(r.await_then(
                        rt,
                        |q| !q.is_empty(),
                        |q| q.pop_front().expect("predicate guaranteed"),
                    ));
                }
                producer.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
