//! Monitors with condition variables (Hoare [1], Brinch Hansen [2] —
//! the paper's reference points for what the manager generalizes).
//!
//! Mesa-style signalling: `signal` moves one waiter back to the entry
//! competition; waiters re-check their predicate in a loop. The paper's
//! critique (§1) is that monitor-based scheduling "gets scattered across
//! the various procedures of the object"; the E1/E2 benchmarks use this
//! implementation as the baseline the manager is compared against.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use alps_runtime::{ProcId, Runtime};
use parking_lot::{Mutex, MutexGuard};

struct MonSt {
    locked: bool,
    entry_q: VecDeque<ProcId>,
    cond_qs: Vec<VecDeque<ProcId>>,
}

struct MonInner<T> {
    st: Mutex<MonSt>,
    data: Mutex<T>,
}

/// Index of a condition variable inside a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cond(pub usize);

/// A monitor protecting a value `T`, with `n` named condition queues.
///
/// # Examples
///
/// A one-slot buffer:
///
/// ```
/// use alps_runtime::{Runtime, Spawn};
/// use alps_sync::{Cond, Monitor};
///
/// const EMPTY: Cond = Cond(0);
/// const FULL: Cond = Cond(1);
///
/// let rt = Runtime::threaded();
/// let m = Monitor::new(2, None::<i32>);
/// let (m2, rt2) = (m.clone(), rt.clone());
/// let h = rt.spawn_with(Spawn::new("producer"), move || {
///     let mut g = m2.enter(&rt2);
///     while g.data().is_some() {
///         g.wait(EMPTY);
///     }
///     *g.data() = Some(42);
///     g.signal(FULL);
/// });
/// let mut g = m.enter(&rt);
/// while g.data().is_none() {
///     g.wait(FULL);
/// }
/// let v = g.data().take().unwrap();
/// g.signal(EMPTY);
/// drop(g);
/// h.join().unwrap();
/// assert_eq!(v, 42);
/// rt.shutdown();
/// ```
pub struct Monitor<T> {
    inner: Arc<MonInner<T>>,
}

impl<T> Clone for Monitor<T> {
    fn clone(&self) -> Self {
        Monitor {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Monitor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.st.lock();
        f.debug_struct("Monitor")
            .field("locked", &st.locked)
            .field("entry_waiters", &st.entry_q.len())
            .field("conditions", &st.cond_qs.len())
            .finish()
    }
}

impl<T: Send> Monitor<T> {
    /// New monitor with `n_conditions` condition queues around `data`.
    pub fn new(n_conditions: usize, data: T) -> Monitor<T> {
        Monitor {
            inner: Arc::new(MonInner {
                st: Mutex::new(MonSt {
                    locked: false,
                    entry_q: VecDeque::new(),
                    cond_qs: (0..n_conditions).map(|_| VecDeque::new()).collect(),
                }),
                data: Mutex::new(data),
            }),
        }
    }

    /// Enter the monitor, blocking while another process is inside.
    pub fn enter<'m>(&'m self, rt: &'m Runtime) -> MonitorGuard<'m, T> {
        self.lock_monitor(rt);
        MonitorGuard { mon: self, rt }
    }

    fn lock_monitor(&self, rt: &Runtime) {
        loop {
            {
                let mut st = self.inner.st.lock();
                if !st.locked {
                    st.locked = true;
                    return;
                }
                let me = rt.current();
                if !st.entry_q.contains(&me) {
                    st.entry_q.push_back(me);
                }
            }
            rt.park();
        }
    }

    fn unlock_monitor(&self, rt: &Runtime) {
        let next = {
            let mut st = self.inner.st.lock();
            debug_assert!(st.locked, "unlock of an unlocked monitor");
            st.locked = false;
            st.entry_q.pop_front()
        };
        if let Some(w) = next {
            rt.unpark(w);
        }
    }
}

/// Possession of a [`Monitor`]: access the data, wait on and signal
/// conditions. Dropping the guard leaves the monitor.
pub struct MonitorGuard<'m, T: Send> {
    mon: &'m Monitor<T>,
    rt: &'m Runtime,
}

impl<T: Send> fmt::Debug for MonitorGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MonitorGuard")
    }
}

impl<T: Send> MonitorGuard<'_, T> {
    /// The protected data. The inner lock is uncontended (possession of
    /// the monitor guarantees exclusion); it exists to keep the API safe.
    pub fn data(&mut self) -> MutexGuard<'_, T> {
        self.mon.inner.data.lock()
    }

    /// Wait on condition `c`: leave the monitor, park until signalled,
    /// re-enter. Mesa semantics — re-check your predicate in a loop.
    pub fn wait(&mut self, c: Cond) {
        {
            let mut st = self.mon.inner.st.lock();
            let me = self.rt.current();
            st.cond_qs[c.0].push_back(me);
        }
        self.mon.unlock_monitor(self.rt);
        loop {
            self.rt.park();
            // Only proceed once we are no longer queued on the condition
            // (i.e. a signal removed us — spurious permits re-park).
            let queued = {
                let st = self.mon.inner.st.lock();
                st.cond_qs[c.0].contains(&self.rt.current())
            };
            if !queued {
                break;
            }
        }
        self.mon.lock_monitor(self.rt);
    }

    /// Wake the first waiter of condition `c` (no-op when none).
    pub fn signal(&mut self, c: Cond) {
        let w = self.mon.inner.st.lock().cond_qs[c.0].pop_front();
        if let Some(w) = w {
            self.rt.unpark(w);
        }
    }

    /// Wake all waiters of condition `c`.
    pub fn signal_all(&mut self, c: Cond) {
        let ws: Vec<ProcId> = self.mon.inner.st.lock().cond_qs[c.0].drain(..).collect();
        for w in ws {
            self.rt.unpark(w);
        }
    }
}

impl<T: Send> Drop for MonitorGuard<'_, T> {
    fn drop(&mut self) {
        self.mon.unlock_monitor(self.rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};
    use std::collections::VecDeque as Q;

    const NOT_FULL: Cond = Cond(0);
    const NOT_EMPTY: Cond = Cond(1);

    #[test]
    fn bounded_buffer_on_monitor_sim() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let m = Monitor::new(2, Q::<i64>::new());
                let cap = 2usize;
                let (m2, rt2) = (m.clone(), rt.clone());
                let producer = rt.spawn_with(Spawn::new("producer"), move || {
                    for i in 0..10i64 {
                        let mut g = m2.enter(&rt2);
                        while g.data().len() >= cap {
                            g.wait(NOT_FULL);
                        }
                        g.data().push_back(i);
                        g.signal(NOT_EMPTY);
                    }
                });
                let mut out = Vec::new();
                for _ in 0..10 {
                    let mut g = m.enter(rt);
                    while g.data().is_empty() {
                        g.wait(NOT_EMPTY);
                    }
                    let v = g.data().pop_front().unwrap();
                    g.signal(NOT_FULL);
                    drop(g);
                    out.push(v);
                }
                producer.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mutual_exclusion_is_enforced() {
        let sim = SimRuntime::new();
        let clean = sim
            .run(|rt| {
                let m = Monitor::new(0, (0u32, true));
                let mut hs = Vec::new();
                for i in 0..3 {
                    let (m2, rt2) = (m.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..50 {
                            let mut g = m2.enter(&rt2);
                            {
                                let mut d = g.data();
                                assert!(d.1, "two processes inside the monitor");
                                d.1 = false;
                            }
                            rt2.yield_now(); // try to break exclusion
                            {
                                let mut d = g.data();
                                d.1 = true;
                                d.0 += 1;
                            }
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                let g = m.inner.data.lock();
                g.0
            })
            .unwrap();
        assert_eq!(clean, 150);
    }

    #[test]
    fn signal_all_wakes_every_waiter() {
        let sim = SimRuntime::new();
        let n = sim
            .run(|rt| {
                let m = Monitor::new(1, 0usize);
                let mut hs = Vec::new();
                for i in 0..4 {
                    let (m2, rt2) = (m.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        let mut g = m2.enter(&rt2);
                        while *g.data() == 0 {
                            g.wait(Cond(0));
                        }
                    }));
                }
                for _ in 0..10 {
                    rt.yield_now(); // all four wait
                }
                let mut g = m.enter(rt);
                *g.data() = 1;
                g.signal_all(Cond(0));
                drop(g);
                let mut done = 0;
                for h in hs {
                    h.join().unwrap();
                    done += 1;
                }
                done
            })
            .unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn signal_with_no_waiters_is_noop() {
        let rt = Runtime::threaded();
        let m = Monitor::new(1, ());
        let mut g = m.enter(&rt);
        g.signal(Cond(0));
        g.signal_all(Cond(0));
    }
}
