//! Path expressions (Campbell & Habermann [4,5]) — the third abstraction
//! the paper positions the manager against: "the idea of separating the
//! scheduling from the procedures that are scheduled was first used in
//! path expressions".
//!
//! A path expression declares the permissible execution orderings of a
//! resource's operations:
//!
//! ```text
//! path deposit ; remove end          -- remove #k needs deposit #k done
//! path 1:(deposit ; remove) end      -- strict alternation (1-slot buffer)
//! path 4:(deposit ; remove) end      -- 4-slot bounded buffer
//! path 1:(10:(read), write) end      -- classic readers-writers:
//!                                       readers share (≤10), writers exclusive
//! ```
//!
//! Grammar (selection `,` binds loosest, sequence `;` tighter, then
//! `n:(...)` restriction and parentheses):
//!
//! ```text
//! path  := "path" expr "end"
//! expr  := seq ("," seq)*
//! seq   := term (";" term)*
//! term  := NUMBER ":" "(" expr ")" | "(" expr ")" | IDENT
//! ```
//!
//! The compiler follows the classic open-path translation: each
//! sequence link and each restriction becomes a counting semaphore; an
//! operation's prologue/epilogue acquire/release them in order.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use alps_runtime::Runtime;

use crate::semaphore::Semaphore;

/// AST of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathExpr {
    /// A named operation.
    Op(String),
    /// `e1 ; e2 ; …` — the k-th start of `e(i+1)` requires k completions
    /// of `e(i)`.
    Seq(Vec<PathExpr>),
    /// `e1 , e2 , …` — alternatives, mutually unconstrained.
    Sel(Vec<PathExpr>),
    /// `n:(e)` — at most `n` concurrent activations of `e`.
    Limit(u64, Box<PathExpr>),
}

/// Parse error for path expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error.
    pub at: usize,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParsePathError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParsePathError {
        ParsePathError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if after
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true)
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if (i == 0 && c.is_alphabetic()) || (i > 0 && (c.is_alphanumeric() || c == '_')) {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            self.pos += end;
            Some(rest[..end].to_string())
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            None
        } else {
            self.pos += digits.len();
            digits.parse().ok()
        }
    }

    fn parse_path(&mut self) -> Result<PathExpr, ParsePathError> {
        if !self.keyword("path") {
            return Err(self.error("expected `path`"));
        }
        let e = self.parse_expr()?;
        if !self.keyword("end") {
            return Err(self.error("expected `end`"));
        }
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(self.error("trailing input after `end`"));
        }
        Ok(e)
    }

    fn parse_expr(&mut self) -> Result<PathExpr, ParsePathError> {
        let mut alts = vec![self.parse_seq()?];
        while self.eat(',') {
            alts.push(self.parse_seq()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("non-empty")
        } else {
            PathExpr::Sel(alts)
        })
    }

    fn parse_seq(&mut self) -> Result<PathExpr, ParsePathError> {
        let mut items = vec![self.parse_term()?];
        while self.eat(';') {
            items.push(self.parse_term()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("non-empty")
        } else {
            PathExpr::Seq(items)
        })
    }

    fn parse_term(&mut self) -> Result<PathExpr, ParsePathError> {
        if let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                let n = self.number().ok_or_else(|| self.error("bad number"))?;
                if n == 0 {
                    return Err(self.error("restriction bound must be positive"));
                }
                if !self.eat(':') {
                    return Err(self.error("expected `:` after bound"));
                }
                if !self.eat('(') {
                    return Err(self.error("expected `(` after `n:`"));
                }
                let e = self.parse_expr()?;
                if !self.eat(')') {
                    return Err(self.error("expected `)`"));
                }
                return Ok(PathExpr::Limit(n, Box::new(e)));
            }
            if c == '(' {
                self.eat('(');
                let e = self.parse_expr()?;
                if !self.eat(')') {
                    return Err(self.error("expected `)`"));
                }
                return Ok(e);
            }
        }
        // `end` must not be swallowed as an identifier.
        let save = self.pos;
        match self.ident() {
            Some(id) if id != "end" && id != "path" => Ok(PathExpr::Op(id)),
            _ => {
                self.pos = save;
                Err(self.error("expected operation name, `(` or `n:(`"))
            }
        }
    }
}

impl std::str::FromStr for PathExpr {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Parser::new(s).parse_path()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SemOp {
    P(usize),
    V(usize),
}

#[derive(Debug, Default, Clone)]
struct OpHooks {
    prologue: Vec<SemOp>,
    epilogue: Vec<SemOp>,
}

/// A compiled path expression: call [`enter`](PathController::enter)
/// before an operation and [`exit`](PathController::exit) after it, and
/// the declared ordering/concurrency constraints are enforced.
///
/// # Examples
///
/// ```
/// use alps_runtime::Runtime;
/// use alps_sync::PathController;
///
/// let rt = Runtime::threaded();
/// let pc = PathController::compile("path deposit ; remove end").unwrap();
/// pc.enter(&rt, "deposit").unwrap();
/// pc.exit(&rt, "deposit").unwrap();
/// // remove may only run after a deposit completed:
/// pc.enter(&rt, "remove").unwrap();
/// pc.exit(&rt, "remove").unwrap();
/// rt.shutdown();
/// ```
pub struct PathController {
    hooks: HashMap<String, OpHooks>,
    sems: Vec<Arc<Semaphore>>,
    expr: PathExpr,
}

impl fmt::Debug for PathController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PathController")
            .field("expr", &self.expr)
            .field("operations", &self.hooks.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Error using a [`PathController`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The operation name is not part of the path expression.
    UnknownOp(String),
    /// An operation name occurs more than once (unsupported).
    DuplicateOp(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::UnknownOp(op) => write!(f, "operation `{op}` not in path expression"),
            PathError::DuplicateOp(op) => {
                write!(
                    f,
                    "operation `{op}` occurs more than once in the path expression"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

impl PathController {
    /// Parse and compile a path expression.
    ///
    /// # Errors
    ///
    /// Parse errors, or [`PathError::DuplicateOp`] if an operation name
    /// occurs twice (occurrence alternatives are not supported).
    pub fn compile(src: &str) -> Result<PathController, Box<dyn std::error::Error + Send + Sync>> {
        let expr: PathExpr = src.parse()?;
        Self::from_expr(expr).map_err(|e| Box::new(e) as _)
    }

    /// Compile an already-parsed expression.
    ///
    /// # Errors
    ///
    /// [`PathError::DuplicateOp`] if an operation name occurs twice.
    pub fn from_expr(expr: PathExpr) -> Result<PathController, PathError> {
        let mut ctl = PathController {
            hooks: HashMap::new(),
            sems: Vec::new(),
            expr: expr.clone(),
        };
        ctl.assign(&expr, Vec::new(), Vec::new())?;
        Ok(ctl)
    }

    fn new_sem(&mut self, init: u64) -> usize {
        self.sems.push(Arc::new(Semaphore::new(init)));
        self.sems.len() - 1
    }

    fn assign(&mut self, e: &PathExpr, pre: Vec<SemOp>, post: Vec<SemOp>) -> Result<(), PathError> {
        match e {
            PathExpr::Op(name) => {
                if self.hooks.contains_key(name) {
                    return Err(PathError::DuplicateOp(name.clone()));
                }
                self.hooks.insert(
                    name.clone(),
                    OpHooks {
                        prologue: pre,
                        epilogue: post,
                    },
                );
                Ok(())
            }
            PathExpr::Sel(alts) => {
                for a in alts {
                    self.assign(a, pre.clone(), post.clone())?;
                }
                Ok(())
            }
            PathExpr::Seq(items) => {
                // Classic open-path translation: a link semaphore (init 0)
                // between consecutive items; the k-th start of item i+1
                // requires k completions of item i. The enclosing prologue
                // applies only to the first item, the enclosing epilogue
                // only to the last — so `n:(a;b)` bounds in-flight
                // *traversals* of the whole sequence.
                let n = items.len();
                let links: Vec<usize> = (0..n - 1).map(|_| self.new_sem(0)).collect();
                for (i, item) in items.iter().enumerate() {
                    let p = if i == 0 {
                        pre.clone()
                    } else {
                        vec![SemOp::P(links[i - 1])]
                    };
                    let q = if i == n - 1 {
                        post.clone()
                    } else {
                        vec![SemOp::V(links[i])]
                    };
                    self.assign(item, p, q)?;
                }
                Ok(())
            }
            PathExpr::Limit(bound, inner) => {
                let s = self.new_sem(*bound);
                let mut p = vec![SemOp::P(s)];
                p.extend(pre.iter().copied());
                let mut q = post.clone();
                q.push(SemOp::V(s));
                self.assign(inner, p, q)?;
                Ok(())
            }
        }
    }

    /// All operation names in the expression.
    pub fn operations(&self) -> Vec<String> {
        let mut v: Vec<String> = self.hooks.keys().cloned().collect();
        v.sort();
        v
    }

    /// Block until the path expression permits `op` to start.
    ///
    /// # Errors
    ///
    /// [`PathError::UnknownOp`] for a name not in the expression.
    pub fn enter(&self, rt: &Runtime, op: &str) -> Result<(), PathError> {
        let hooks = self
            .hooks
            .get(op)
            .ok_or_else(|| PathError::UnknownOp(op.to_string()))?;
        for semop in &hooks.prologue {
            match semop {
                SemOp::P(i) => self.sems[*i].acquire(rt),
                SemOp::V(i) => self.sems[*i].release(rt),
            }
        }
        Ok(())
    }

    /// Record completion of `op`, releasing whatever it unblocks.
    ///
    /// # Errors
    ///
    /// [`PathError::UnknownOp`] for a name not in the expression.
    pub fn exit(&self, rt: &Runtime, op: &str) -> Result<(), PathError> {
        let hooks = self
            .hooks
            .get(op)
            .ok_or_else(|| PathError::UnknownOp(op.to_string()))?;
        for semop in &hooks.epilogue {
            match semop {
                SemOp::P(i) => self.sems[*i].acquire(rt),
                SemOp::V(i) => self.sems[*i].release(rt),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn parser_builds_expected_ast() {
        let e: PathExpr = "path 1:(10:(read), write) end".parse().unwrap();
        assert_eq!(
            e,
            PathExpr::Limit(
                1,
                Box::new(PathExpr::Sel(vec![
                    PathExpr::Limit(10, Box::new(PathExpr::Op("read".into()))),
                    PathExpr::Op("write".into()),
                ]))
            )
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!("path end".parse::<PathExpr>().is_err());
        assert!("deposit".parse::<PathExpr>().is_err());
        assert!("path a ; end".parse::<PathExpr>().is_err());
        assert!("path 0:(a) end".parse::<PathExpr>().is_err());
        assert!("path a end extra".parse::<PathExpr>().is_err());
    }

    #[test]
    fn duplicate_ops_rejected() {
        let e: PathExpr = "path a ; a end".parse().unwrap();
        assert!(matches!(
            PathController::from_expr(e),
            Err(PathError::DuplicateOp(_))
        ));
    }

    #[test]
    fn unknown_op_rejected() {
        let rt = Runtime::threaded();
        let pc = PathController::compile("path a end").unwrap();
        assert!(matches!(pc.enter(&rt, "zzz"), Err(PathError::UnknownOp(_))));
        rt.shutdown();
    }
    use alps_runtime::Runtime;

    #[test]
    fn sequence_enforces_alternation() {
        // path deposit ; remove end — remove #k needs deposit #k done.
        let sim = SimRuntime::new();
        let trace = sim
            .run(|rt| {
                let pc =
                    Arc::new(PathController::compile("path 1:(deposit ; remove) end").unwrap());
                let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                // A remover that starts first must wait for the depositor.
                let (pc2, rt2, log2) = (Arc::clone(&pc), rt.clone(), Arc::clone(&log));
                hs.push(rt.spawn_with(Spawn::new("remover"), move || {
                    for _ in 0..3 {
                        pc2.enter(&rt2, "remove").unwrap();
                        log2.lock().push("remove");
                        pc2.exit(&rt2, "remove").unwrap();
                    }
                }));
                let (pc3, rt3, log3) = (Arc::clone(&pc), rt.clone(), Arc::clone(&log));
                hs.push(rt.spawn_with(Spawn::new("depositor"), move || {
                    for _ in 0..3 {
                        pc3.enter(&rt3, "deposit").unwrap();
                        log3.lock().push("deposit");
                        pc3.exit(&rt3, "deposit").unwrap();
                    }
                }));
                for h in hs {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap();
        assert_eq!(
            trace,
            vec!["deposit", "remove", "deposit", "remove", "deposit", "remove"]
        );
    }

    #[test]
    fn limit_bounds_concurrency() {
        let sim = SimRuntime::new();
        let peak = sim
            .run(|rt| {
                let pc = Arc::new(PathController::compile("path 2:(work) end").unwrap());
                let active = Arc::new(AtomicUsize::new(0));
                let peak = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..5 {
                    let (pc2, rt2) = (Arc::clone(&pc), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        pc2.enter(&rt2, "work").unwrap();
                        let n = a2.fetch_add(1, Ordering::SeqCst) + 1;
                        p2.fetch_max(n, Ordering::SeqCst);
                        rt2.sleep(50);
                        a2.fetch_sub(1, Ordering::SeqCst);
                        pc2.exit(&rt2, "work").unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(Ordering::SeqCst)
            })
            .unwrap();
        assert!(peak <= 2, "limit violated: {peak}");
        assert!(peak >= 2, "never reached the bound: {peak}");
    }

    #[test]
    fn readers_writers_path_invariant() {
        // path 1:(3:(read), write) end — readers share (≤3), writers
        // exclusive.
        let sim = SimRuntime::new();
        let bad = sim
            .run(|rt| {
                let pc = Arc::new(PathController::compile("path 1:(3:(read), write) end").unwrap());
                let readers = Arc::new(AtomicI64::new(0));
                let writers = Arc::new(AtomicI64::new(0));
                let bad = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..4 {
                    let (pc2, rt2) = (Arc::clone(&pc), rt.clone());
                    let (r2, w2, b2) =
                        (Arc::clone(&readers), Arc::clone(&writers), Arc::clone(&bad));
                    hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                        for _ in 0..4 {
                            pc2.enter(&rt2, "read").unwrap();
                            r2.fetch_add(1, Ordering::SeqCst);
                            if w2.load(Ordering::SeqCst) > 0 {
                                b2.fetch_add(1, Ordering::SeqCst);
                            }
                            rt2.sleep(7);
                            r2.fetch_sub(1, Ordering::SeqCst);
                            pc2.exit(&rt2, "read").unwrap();
                        }
                    }));
                }
                for i in 0..2 {
                    let (pc2, rt2) = (Arc::clone(&pc), rt.clone());
                    let (r2, w2, b2) =
                        (Arc::clone(&readers), Arc::clone(&writers), Arc::clone(&bad));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..4 {
                            pc2.enter(&rt2, "write").unwrap();
                            if r2.load(Ordering::SeqCst) > 0
                                || w2.fetch_add(1, Ordering::SeqCst) > 0
                            {
                                b2.fetch_add(1, Ordering::SeqCst);
                            }
                            rt2.sleep(5);
                            w2.fetch_sub(1, Ordering::SeqCst);
                            pc2.exit(&rt2, "write").unwrap();
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                bad.load(Ordering::SeqCst)
            })
            .unwrap();
        assert_eq!(bad, 0);
    }

    #[test]
    fn operations_listed() {
        let pc = PathController::compile("path a ; b , c end").unwrap();
        assert_eq!(pc.operations(), vec!["a", "b", "c"]);
    }
}
