//! Serializers (Hewitt & Atkinson [3]) — the second abstraction the paper
//! says the manager generalizes: "the manager can be programmed to allow
//! multiple users to access the resource simultaneously — a facility
//! sought in the design of the serializer mechanism".
//!
//! A serializer is a monitor-like capsule whose *possession* is released
//! while the protected body runs: processes `enqueue` on named queues
//! until a guarantee holds, then `join a crowd` and execute the resource
//! body outside possession, so compatible operations overlap.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use alps_runtime::{ProcId, Runtime};
use parking_lot::Mutex;

/// Index of a FIFO queue inside a [`Serializer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queue(pub usize);

/// Index of a crowd (a counted set of concurrent occupants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crowd(pub usize);

struct Waiter {
    id: ProcId,
    turn: bool,
}

struct SerSt {
    possessed: bool,
    entry_q: VecDeque<ProcId>,
    queues: Vec<VecDeque<Waiter>>,
    crowds: Vec<usize>,
}

/// Read-only view of the serializer state for guarantee predicates.
#[derive(Debug, Clone)]
pub struct SerView {
    /// Occupancy of each crowd.
    pub crowds: Vec<usize>,
    /// Length of each queue.
    pub queue_lens: Vec<usize>,
}

/// A serializer with `q` queues and `c` crowds.
///
/// # Examples
///
/// Readers–writers: readers join a crowd many-at-a-time, writers require
/// an empty reader crowd.
///
/// ```
/// use alps_runtime::Runtime;
/// use alps_sync::{Crowd, Queue, Serializer};
///
/// let rt = Runtime::threaded();
/// let s = Serializer::new(2, 2);
/// const READ_Q: Queue = Queue(0);
/// const READERS: Crowd = Crowd(0);
/// const WRITERS: Crowd = Crowd(1);
///
/// let out = s.run(
///     &rt,
///     READ_Q,
///     |view| view.crowds[WRITERS.0] == 0, // guarantee: no writer active
///     READERS,
///     || 21 * 2, // resource body, runs outside possession
/// );
/// assert_eq!(out, 42);
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Serializer {
    st: Arc<Mutex<SerSt>>,
}

impl fmt::Debug for Serializer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        f.debug_struct("Serializer")
            .field("possessed", &st.possessed)
            .field("crowds", &st.crowds)
            .finish()
    }
}

impl Serializer {
    /// New serializer with `queues` queues and `crowds` crowds.
    pub fn new(queues: usize, crowds: usize) -> Serializer {
        Serializer {
            st: Arc::new(Mutex::new(SerSt {
                possessed: false,
                entry_q: VecDeque::new(),
                queues: (0..queues).map(|_| VecDeque::new()).collect(),
                crowds: vec![0; crowds],
            })),
        }
    }

    /// The full serializer protocol: gain possession, enqueue on `q`
    /// until `guarantee` holds at the head of the queue, join `crowd`,
    /// release possession, run `body`, regain possession, leave the
    /// crowd, release.
    pub fn run<R>(
        &self,
        rt: &Runtime,
        q: Queue,
        guarantee: impl Fn(&SerView) -> bool,
        crowd: Crowd,
        body: impl FnOnce() -> R,
    ) -> R {
        self.gain(rt);
        self.enqueue_until(rt, q, &guarantee);
        {
            let mut st = self.st.lock();
            st.crowds[crowd.0] += 1;
        }
        self.release_and_pulse(rt, true);
        let out = body();
        self.gain(rt);
        {
            let mut st = self.st.lock();
            st.crowds[crowd.0] -= 1;
        }
        self.release_and_pulse(rt, true);
        out
    }

    /// Current crowd occupancies and queue lengths.
    pub fn view(&self) -> SerView {
        let st = self.st.lock();
        SerView {
            crowds: st.crowds.clone(),
            queue_lens: st.queues.iter().map(|q| q.len()).collect(),
        }
    }

    fn gain(&self, rt: &Runtime) {
        loop {
            {
                let mut st = self.st.lock();
                if !st.possessed {
                    st.possessed = true;
                    return;
                }
                let me = rt.current();
                if !st.entry_q.contains(&me) {
                    st.entry_q.push_back(me);
                }
            }
            rt.park();
        }
    }

    /// Release possession and wake the next entrant. When `state_changed`
    /// (a crowd was joined or left, or a waiter dequeued), also give every
    /// queue head a *turn* to re-check its guarantee. Releases that change
    /// nothing must not re-grant turns, or a waiter whose guarantee fails
    /// would spin hot — under virtual time that livelock freezes the clock
    /// (the crowd it waits on never gets to leave).
    fn release_and_pulse(&self, rt: &Runtime, state_changed: bool) {
        let mut to_wake: Vec<ProcId> = Vec::new();
        {
            let mut st = self.st.lock();
            debug_assert!(st.possessed);
            st.possessed = false;
            if state_changed {
                for q in &mut st.queues {
                    if let Some(head) = q.front_mut() {
                        head.turn = true;
                        to_wake.push(head.id);
                    }
                }
            }
            if let Some(next) = st.entry_q.pop_front() {
                to_wake.push(next);
            }
        }
        for w in to_wake {
            rt.unpark(w);
        }
    }

    /// Wait (inside possession) until this process heads queue `q` and
    /// the guarantee holds; returns still in possession.
    fn enqueue_until(&self, rt: &Runtime, q: Queue, guarantee: &impl Fn(&SerView) -> bool) {
        // Fast path: queue empty and guarantee holds now.
        {
            let st = self.st.lock();
            let view = SerView {
                crowds: st.crowds.clone(),
                queue_lens: st.queues.iter().map(|qq| qq.len()).collect(),
            };
            if st.queues[q.0].is_empty() && guarantee(&view) {
                return;
            }
        }
        // Slow path: enqueue, release possession, wait for our turn with
        // a holding guarantee.
        {
            let mut st = self.st.lock();
            let me = rt.current();
            // A fresh head starts with a turn: the guarantee may already
            // hold (the fast path only handles the empty-queue case).
            let turn = st.queues[q.0].is_empty();
            st.queues[q.0].push_back(Waiter { id: me, turn });
        }
        self.release_and_pulse(rt, false);
        loop {
            let me = rt.current();
            // Were we given a turn? (Checked before parking so the turn
            // granted at enqueue time — covering a state change that
            // raced the fast path — is not lost.)
            let has_turn = {
                let st = self.st.lock();
                st.queues[q.0]
                    .front()
                    .map(|w| w.id == me && w.turn)
                    .unwrap_or(false)
            };
            if !has_turn {
                rt.park();
                continue;
            }
            self.gain(rt);
            let granted = {
                let mut st = self.st.lock();
                let view = SerView {
                    crowds: st.crowds.clone(),
                    queue_lens: st.queues.iter().map(|qq| qq.len()).collect(),
                };
                let head_is_me = st.queues[q.0].front().map(|w| w.id == me).unwrap_or(false);
                if head_is_me && guarantee(&view) {
                    st.queues[q.0].pop_front();
                    true
                } else {
                    if let Some(h) = st.queues[q.0].front_mut() {
                        if h.id == me {
                            h.turn = false;
                        }
                    }
                    false
                }
            };
            if granted {
                // We left the queue: successors' guarantees may now hold.
                // Keep possession but hand out turns.
                let mut to_wake: Vec<ProcId> = Vec::new();
                {
                    let mut st = self.st.lock();
                    for qq in &mut st.queues {
                        if let Some(head) = qq.front_mut() {
                            head.turn = true;
                            to_wake.push(head.id);
                        }
                    }
                }
                for w in to_wake {
                    rt.unpark(w);
                }
                return; // still in possession
            }
            self.release_and_pulse(rt, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};
    use std::sync::atomic::{AtomicUsize, Ordering};

    const Q_READ: Queue = Queue(0);
    const Q_WRITE: Queue = Queue(1);
    const READERS: Crowd = Crowd(0);
    const WRITERS: Crowd = Crowd(1);

    #[test]
    fn body_runs_outside_possession_so_crowds_overlap() {
        let sim = SimRuntime::new();
        let max_overlap = sim
            .run(|rt| {
                let s = Serializer::new(2, 2);
                let active = Arc::new(AtomicUsize::new(0));
                let peak = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..4 {
                    let (s2, rt2) = (s.clone(), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                        s2.run(
                            &rt2,
                            Q_READ,
                            |v| v.crowds[WRITERS.0] == 0,
                            READERS,
                            || {
                                let n = a2.fetch_add(1, Ordering::SeqCst) + 1;
                                p2.fetch_max(n, Ordering::SeqCst);
                                rt2.sleep(100);
                                a2.fetch_sub(1, Ordering::SeqCst);
                            },
                        );
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(Ordering::SeqCst)
            })
            .unwrap();
        assert!(max_overlap >= 2, "readers never overlapped: {max_overlap}");
    }

    #[test]
    fn writers_exclude_readers_and_writers() {
        let sim = SimRuntime::new();
        let violations = sim
            .run(|rt| {
                let s = Serializer::new(2, 2);
                let readers = Arc::new(AtomicUsize::new(0));
                let writers = Arc::new(AtomicUsize::new(0));
                let bad = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..3 {
                    let (s2, rt2) = (s.clone(), rt.clone());
                    let (r2, w2, b2) =
                        (Arc::clone(&readers), Arc::clone(&writers), Arc::clone(&bad));
                    hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                        for _ in 0..5 {
                            s2.run(
                                &rt2,
                                Q_READ,
                                |v| v.crowds[WRITERS.0] == 0,
                                READERS,
                                || {
                                    r2.fetch_add(1, Ordering::SeqCst);
                                    if w2.load(Ordering::SeqCst) > 0 {
                                        b2.fetch_add(1, Ordering::SeqCst);
                                    }
                                    rt2.sleep(10);
                                    r2.fetch_sub(1, Ordering::SeqCst);
                                },
                            );
                        }
                    }));
                }
                for i in 0..2 {
                    let (s2, rt2) = (s.clone(), rt.clone());
                    let (r2, w2, b2) =
                        (Arc::clone(&readers), Arc::clone(&writers), Arc::clone(&bad));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..5 {
                            s2.run(
                                &rt2,
                                Q_WRITE,
                                |v| v.crowds[READERS.0] == 0 && v.crowds[WRITERS.0] == 0,
                                WRITERS,
                                || {
                                    if r2.load(Ordering::SeqCst) > 0
                                        || w2.fetch_add(1, Ordering::SeqCst) > 0
                                    {
                                        b2.fetch_add(1, Ordering::SeqCst);
                                    }
                                    rt2.sleep(10);
                                    w2.fetch_sub(1, Ordering::SeqCst);
                                },
                            );
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                bad.load(Ordering::SeqCst)
            })
            .unwrap();
        assert_eq!(violations, 0);
    }

    #[test]
    fn view_reports_state() {
        let s = Serializer::new(1, 1);
        let v = s.view();
        assert_eq!(v.crowds, vec![0]);
        assert_eq!(v.queue_lens, vec![0]);
    }
}
