//! # alps-sync — the synchronization abstractions the ALPS manager generalizes
//!
//! The paper (§1) positions the object/manager facility as "a
//! generalization of the well-known synchronization abstractions monitor
//! \[1,2\], serializer \[3\] and path expressions \[4,5\]", and explicitly
//! avoids semaphores and conditional critical regions for intra-object
//! scheduling. This crate implements all of them from scratch — on the
//! same runtime primitives as the ALPS objects, so they run
//! deterministically under [`alps_runtime::SimRuntime`] — to serve as the
//! baselines in experiments E1, E2 and E6:
//!
//! * [`Semaphore`] — counting semaphore, FIFO wakeups.
//! * [`Monitor`] / [`Cond`] — monitor with Mesa-style condition queues.
//! * [`Serializer`] / [`Queue`] / [`Crowd`] — Hewitt–Atkinson serializer.
//! * [`PathController`] / [`PathExpr`] — compiled Campbell–Habermann path
//!   expressions with the classic semaphore translation.
//! * [`Region`] — conditional critical regions.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ccr;
mod monitor;
mod path;
mod semaphore;
mod serializer;

pub use ccr::Region;
pub use monitor::{Cond, Monitor, MonitorGuard};
pub use path::{ParsePathError, PathController, PathError, PathExpr};
pub use semaphore::Semaphore;
pub use serializer::{Crowd, Queue, SerView, Serializer};
