//! Counting semaphore integrated with the ALPS runtime.
//!
//! Unlike `std`/`parking_lot` primitives, blocking goes through
//! [`Runtime::park`], so semaphores work identically — and
//! deterministically — under the simulation executor.

use std::collections::VecDeque;
use std::sync::Arc;

use alps_runtime::{ProcId, Runtime};
use parking_lot::Mutex;

#[derive(Debug)]
struct SemSt {
    permits: u64,
    waiters: VecDeque<ProcId>,
}

/// A counting semaphore with FIFO wakeup.
///
/// # Examples
///
/// ```
/// use alps_runtime::Runtime;
/// use alps_sync::Semaphore;
///
/// let rt = Runtime::threaded();
/// let s = Semaphore::new(2);
/// s.acquire(&rt);
/// s.acquire(&rt);
/// assert!(!s.try_acquire());
/// s.release(&rt);
/// assert!(s.try_acquire());
/// rt.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct Semaphore {
    st: Arc<Mutex<SemSt>>,
}

impl Semaphore {
    /// New semaphore with `permits` initial permits.
    pub fn new(permits: u64) -> Semaphore {
        Semaphore {
            st: Arc::new(Mutex::new(SemSt {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// P: take a permit, blocking until one is available.
    pub fn acquire(&self, rt: &Runtime) {
        loop {
            {
                let mut st = self.st.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
                let me = rt.current();
                if !st.waiters.contains(&me) {
                    st.waiters.push_back(me);
                }
            }
            rt.park();
        }
    }

    /// Non-blocking P.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.st.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// V: return a permit and wake the first waiter.
    pub fn release(&self, rt: &Runtime) {
        let waiter = {
            let mut st = self.st.lock();
            st.permits += 1;
            st.waiters.pop_front()
        };
        if let Some(w) = waiter {
            rt.unpark(w);
        }
    }

    /// Current number of available permits.
    pub fn permits(&self) -> u64 {
        self.st.lock().permits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_count_down_and_up() {
        let rt = Runtime::threaded();
        let s = Semaphore::new(1);
        assert_eq!(s.permits(), 1);
        s.acquire(&rt);
        assert_eq!(s.permits(), 0);
        s.release(&rt);
        assert_eq!(s.permits(), 1);
    }

    #[test]
    fn blocked_acquire_resumes_on_release() {
        let sim = SimRuntime::new();
        let progress = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&progress);
        sim.run(move |rt| {
            let s = Semaphore::new(0);
            let s2 = s.clone();
            let rt2 = rt.clone();
            let h = rt.spawn_with(Spawn::new("waiter"), move || {
                s2.acquire(&rt2);
                p2.store(1, Ordering::SeqCst);
            });
            rt.yield_now(); // waiter blocks
            s.release(rt);
            h.join().unwrap();
        })
        .unwrap();
        assert_eq!(progress.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn mutual_exclusion_under_sim() {
        // A binary semaphore protects a counter; interleavings in the sim
        // must never lose updates.
        let sim = SimRuntime::new();
        let total = sim
            .run(|rt| {
                let s = Semaphore::new(1);
                let counter = Arc::new(Mutex::new(0u64));
                let mut hs = Vec::new();
                for i in 0..4 {
                    let (s2, rt2, c2) = (s.clone(), rt.clone(), Arc::clone(&counter));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..100 {
                            s2.acquire(&rt2);
                            let v = *c2.lock();
                            rt2.yield_now(); // tempt a lost update
                            *c2.lock() = v + 1;
                            s2.release(&rt2);
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                let v = *counter.lock();
                v
            })
            .unwrap();
        assert_eq!(total, 400);
    }

    #[test]
    fn fifo_wakeup_order() {
        let sim = SimRuntime::new();
        let order = sim
            .run(|rt| {
                let s = Semaphore::new(0);
                let log = Arc::new(Mutex::new(Vec::new()));
                let mut hs = Vec::new();
                for name in ["a", "b", "c"] {
                    let (s2, rt2, log2) = (s.clone(), rt.clone(), Arc::clone(&log));
                    hs.push(rt.spawn_with(Spawn::new(name), move || {
                        s2.acquire(&rt2);
                        log2.lock().push(name);
                    }));
                    rt.yield_now(); // enqueue in order a, b, c
                }
                for _ in 0..3 {
                    s.release(rt);
                    rt.yield_now();
                }
                for h in hs {
                    h.join().unwrap();
                }
                let v = log.lock().clone();
                v
            })
            .unwrap();
        assert_eq!(order, vec!["a", "b", "c"]);
    }
}
