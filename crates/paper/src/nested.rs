//! Nested cross-object calls (paper §2.3): the asynchronous `start`
//! avoids the nested-monitor-call problem.
//!
//! "Two objects X and Y can be programmed without deadlock such that an
//! entry procedure P in X calls a procedure Q in Y which in turn calls
//! another entry R in X. Deadlock can be avoided because X's manager can
//! be programmed such that after starting the execution of P it can be
//! ready to accept calls to R. Note that DP, Ada and SR suffer from the
//! nested calls problem." Experiment E6 demonstrates both sides: the ALPS
//! pair completes; the equivalent monitor nesting deadlocks (detected by
//! the simulator).

use alps_core::{EntryDef, ObjectBuilder, ObjectHandle, Result, Ty, Value};
use alps_runtime::Runtime;
use alps_sync::Monitor;

/// Builds the paper's X/Y pair: `X.P` calls `Y.Q`, which calls back into
/// `X.R`. Returns the handle for `X` (call `P` on it).
///
/// Both X entries are intercepted; X's manager is a plain
/// accept-start / await-finish loop, so after starting `P` it is free to
/// accept the reentrant `R`.
///
/// # Errors
///
/// Propagates object-definition errors (none for this fixed shape).
pub fn spawn_cross_calling_pair(rt: &Runtime) -> Result<(ObjectHandle, ObjectHandle)> {
    // Y is built first; X's P body captures its handle.
    // Y.Q(v) = X.R(v) + 100   (the callback into X)
    // X.R(v) = v + 1
    // X.P(v) = Y.Q(v) * 2
    let y_builder_slot: std::sync::Arc<parking_lot::Mutex<Option<ObjectHandle>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(None));
    let y_for_p = std::sync::Arc::clone(&y_builder_slot);
    let x = ObjectBuilder::new("X")
        .entry(
            EntryDef::new("P")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(move |_ctx, args| {
                    let y = y_for_p.lock().clone().expect("Y installed before use");
                    let r = y.call("Q", vec![args[0].clone()])?;
                    Ok(vec![Value::Int(r[0].as_int()? * 2)])
                }),
        )
        .entry(
            EntryDef::new("R")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(|_ctx, args| Ok(vec![Value::Int(args[0].as_int()? + 1)])),
        )
        .manager(|mgr| loop {
            // The crucial shape: start asynchronously, keep accepting.
            let sel = mgr.select(vec![
                alps_core::Guard::accept("P"),
                alps_core::Guard::accept("R"),
                alps_core::Guard::await_done("P"),
                alps_core::Guard::await_done("R"),
            ])?;
            match sel {
                alps_core::Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                alps_core::Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                _ => unreachable!(),
            }
        })
        .spawn(rt)?;
    let x_for_q = x.clone();
    let y = ObjectBuilder::new("Y")
        .entry(
            EntryDef::new("Q")
                .params([Ty::Int])
                .results([Ty::Int])
                .intercepted()
                .body(move |_ctx, args| {
                    let r = x_for_q.call("R", vec![args[0].clone()])?;
                    Ok(vec![Value::Int(r[0].as_int()? + 100)])
                }),
        )
        .manager(|mgr| loop {
            let sel = mgr.select(vec![
                alps_core::Guard::accept("Q"),
                alps_core::Guard::await_done("Q"),
            ])?;
            match sel {
                alps_core::Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                alps_core::Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                _ => unreachable!(),
            }
        })
        .spawn(rt)?;
    *y_builder_slot.lock() = Some(y.clone());
    Ok((x, y))
}

/// The monitor analogue that *does* deadlock: `X.P` holds monitor X while
/// calling `Y.Q`, which tries to re-enter monitor X. Calling
/// [`NestedMonitors::nested_monitor_call`] from a simulated process never
/// returns; the simulation's deadlock detector reports it (E6's baseline
/// row).
#[derive(Debug, Clone)]
pub struct NestedMonitors {
    x: Monitor<i64>,
    y: Monitor<i64>,
}

impl Default for NestedMonitors {
    fn default() -> Self {
        Self::new()
    }
}

impl NestedMonitors {
    /// New monitor pair.
    pub fn new() -> NestedMonitors {
        NestedMonitors {
            x: Monitor::new(0, 0),
            y: Monitor::new(0, 0),
        }
    }

    /// `X.P` under nested-monitor semantics: enter X, call `Y.Q` while
    /// still inside X; `Y.Q` re-enters X → self-deadlock.
    pub fn nested_monitor_call(&self, rt: &Runtime, v: i64) -> i64 {
        let _gx = self.x.enter(rt); // hold X across the nested call
        let _gy = self.y.enter(rt); // Y.Q
        let _gx2 = self.x.enter(rt); // X.R — blocks forever: X is held
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_core::vals;
    use alps_runtime::{RuntimeError, SimRuntime, Spawn};

    #[test]
    fn alps_cross_calls_complete_without_deadlock() {
        let sim = SimRuntime::new();
        let v = sim
            .run(|rt| {
                let (x, _y) = spawn_cross_calling_pair(rt).unwrap();
                x.call("P", vals![5i64]).unwrap()[0].as_int().unwrap()
            })
            .unwrap();
        // P(5) = (Q(5)) * 2 = (R(5) + 100) * 2 = (5 + 1 + 100) * 2
        assert_eq!(v, 212);
    }

    #[test]
    fn several_concurrent_cross_calls_complete() {
        let sim = SimRuntime::new();
        let ok = sim
            .run(|rt| {
                let (x, _y) = spawn_cross_calling_pair(rt).unwrap();
                let mut hs = Vec::new();
                for i in 0..5i64 {
                    let x2 = x.clone();
                    hs.push(rt.spawn_with(Spawn::new(format!("c{i}")), move || {
                        x2.call("P", vals![i]).unwrap()[0].as_int().unwrap()
                    }));
                }
                hs.into_iter()
                    .enumerate()
                    .all(|(i, h)| h.join().unwrap() == (i as i64 + 101) * 2)
            })
            .unwrap();
        assert!(ok);
    }

    #[test]
    fn monitor_nesting_deadlocks_and_is_detected() {
        let sim = SimRuntime::new();
        let err = sim
            .run(|rt| {
                let nm = NestedMonitors::new();
                nm.nested_monitor_call(rt, 1)
            })
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Deadlock { .. }),
            "expected detected deadlock, got {err:?}"
        );
    }
}
