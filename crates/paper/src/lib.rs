//! # alps-paper — the worked examples of the ALPS paper
//!
//! Every example program in *"Synchronization and Scheduling in ALPS
//! Objects"* (ICDCS 1988), implemented on `alps-core`, plus the baseline
//! implementations (on `alps-sync`) that the benchmark harness compares
//! them against:
//!
//! | Paper § | Module | Mechanism exercised |
//! |---------|--------|---------------------|
//! | §2.4.1  | [`bounded_buffer`] | basic manager, guarded accept, `execute` |
//! | §2.5.1  | [`readers_writers`] | hidden procedure arrays, `#P` in guards, starvation-free policy |
//! | §2.7.1  | [`dictionary`] | full param/result interception, request combining |
//! | §2.8.1  | [`spooler`] | hidden parameters and hidden results |
//! | §2.8.2  | [`parallel_buffer`] | everything combined: parallel deposits/removals |
//! | §2.3    | [`nested`] | asynchronous `start` avoids nested-call deadlock |

#![warn(missing_docs)]

pub mod bounded_buffer;
pub mod dictionary;
pub mod nested;
pub mod parallel_buffer;
pub mod readers_writers;
pub mod spooler;
