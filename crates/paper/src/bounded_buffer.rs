//! The bounded buffer of paper §2.4.1 — the first example of a manager —
//! plus the baseline implementations experiment E1 compares against.
//!
//! The paper's manager accepts `Deposit` only while the buffer is not
//! full and `Remove` only while it is not empty, executing each call to
//! completion before accepting another (`execute`): monitor-style mutual
//! exclusion expressed entirely inside the manager.

use std::collections::VecDeque;
use std::sync::Arc;

use alps_core::{
    argv, AdmissionPolicy, EntryDef, EntryId, Guard, ObjectBuilder, ObjectHandle, Result, Selected,
    Ty, Value,
};
use alps_runtime::Runtime;
use alps_sync::{Cond, Monitor};
use parking_lot::Mutex;

/// A manager-mediated bounded buffer of `i64` messages (paper §2.4.1).
///
/// # Examples
///
/// ```
/// use alps_paper::bounded_buffer::AlpsBuffer;
/// use alps_runtime::SimRuntime;
///
/// let sim = SimRuntime::new();
/// let v = sim
///     .run(|rt| {
///         let buf = AlpsBuffer::spawn(rt, 4).unwrap();
///         buf.deposit(rt, 7).unwrap();
///         buf.remove(rt).unwrap()
///     })
///     .unwrap();
/// assert_eq!(v, 7);
/// ```
#[derive(Debug, Clone)]
pub struct AlpsBuffer {
    obj: ObjectHandle,
    deposit: EntryId,
    remove: EntryId,
}

impl AlpsBuffer {
    /// Create the buffer object with capacity `n` and start its manager.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid `n`).
    pub fn spawn(rt: &Runtime, n: usize) -> Result<AlpsBuffer> {
        Self::spawn_with_copy_cost(rt, n, 0)
    }

    /// Like [`spawn`](Self::spawn), but each Deposit/Remove body also
    /// spends `copy_cost` virtual ticks copying the message *inside* the
    /// operation — the knob experiment E5 sweeps to compare this serial
    /// buffer against the §2.8.2 parallel buffer.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid `n`).
    pub fn spawn_with_copy_cost(rt: &Runtime, n: usize, copy_cost: u64) -> Result<AlpsBuffer> {
        Self::build(rt, n, copy_cost, None)
    }

    /// Like [`spawn`](Self::spawn), but the object sheds load instead of
    /// queueing it without bound: the manager's intake ring is capped at
    /// `intake` pending calls and arrivals beyond that are answered
    /// [`alps_core::AlpsError::Overloaded`]
    /// ([`AdmissionPolicy::ShedNewest`]) instead of parking the caller.
    /// Shed calls never touch the buffer; admitted calls keep the usual
    /// FIFO and backpressure semantics, and the shed count is visible as
    /// `object().stats().sheds()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use alps_core::AlpsError;
    /// use alps_paper::bounded_buffer::AlpsBuffer;
    /// use alps_runtime::SimRuntime;
    ///
    /// let sim = SimRuntime::new();
    /// let v = sim
    ///     .run(|rt| {
    ///         // Capacity 4, at most 2 calls waiting in the intake ring.
    ///         let buf = AlpsBuffer::spawn_shedding(rt, 4, 2).unwrap();
    ///         buf.deposit(rt, 7).unwrap();
    ///         // An uncontended caller is always admitted; under a storm
    ///         // the excess would see Err(AlpsError::Overloaded) instead
    ///         // of parking forever.
    ///         buf.remove(rt).unwrap()
    ///     })
    ///     .unwrap();
    /// assert_eq!(v, 7);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid `n`).
    pub fn spawn_shedding(rt: &Runtime, n: usize, intake: usize) -> Result<AlpsBuffer> {
        Self::build(rt, n, 0, Some(intake))
    }

    fn build(
        rt: &Runtime,
        n: usize,
        copy_cost: u64,
        shed_intake: Option<usize>,
    ) -> Result<AlpsBuffer> {
        assert!(n > 0, "buffer capacity must be positive");
        let store: Arc<Mutex<VecDeque<Value>>> = Arc::new(Mutex::new(VecDeque::new()));
        let (s_dep, s_rem) = (Arc::clone(&store), Arc::clone(&store));
        let mut builder = ObjectBuilder::new("Buffer")
            .entry(
                EntryDef::new("Deposit")
                    .params([Ty::Int])
                    .intercepted()
                    .body(move |ctx, args| {
                        ctx.sleep(copy_cost);
                        s_dep.lock().push_back(args[0].clone());
                        Ok(vec![])
                    }),
            )
            .entry(
                EntryDef::new("Remove")
                    .results([Ty::Int])
                    .intercepted()
                    .body(move |ctx, _| {
                        ctx.sleep(copy_cost);
                        let v = s_rem
                            .lock()
                            .pop_front()
                            .expect("manager admits Remove only when non-empty");
                        Ok(vec![v])
                    }),
            )
            .manager(move |mgr| {
                // The paper's manager: Count tracks occupancy; a call is
                // accepted only when its guard holds, and each accepted
                // call is executed to completion (execute = start; await;
                // finish).
                let mut count = 0usize;
                loop {
                    let sel = mgr.select(vec![
                        Guard::accept("Deposit").when(move |_| count < n),
                        Guard::accept("Remove").when(move |_| count > 0),
                    ])?;
                    match sel {
                        Selected::Accepted { guard, call } => {
                            let deposit = guard == 0;
                            mgr.execute(call)?;
                            if deposit {
                                count += 1;
                            } else {
                                count -= 1;
                            }
                        }
                        _ => unreachable!("only accept guards"),
                    }
                }
            });
        if let Some(intake) = shed_intake {
            builder = builder
                .admission(AdmissionPolicy::ShedNewest)
                .intake_capacity(intake);
        }
        let obj = builder.spawn(rt)?;
        // Intern the entry names once; every deposit/remove then takes
        // the call_id fast path.
        let deposit = obj.entry_id("Deposit")?;
        let remove = obj.entry_id("Remove")?;
        Ok(AlpsBuffer {
            obj,
            deposit,
            remove,
        })
    }

    /// Deposit a message (blocks while the buffer is full).
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn deposit(&self, _rt: &Runtime, v: i64) -> Result<()> {
        self.obj.call_id(self.deposit, argv![v])?;
        Ok(())
    }

    /// Remove the oldest message (blocks while the buffer is empty).
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn remove(&self, _rt: &Runtime) -> Result<i64> {
        let r = self.obj.call_id(self.remove, argv![])?;
        r[0].as_int()
    }

    /// [`deposit`](Self::deposit) bounded by a deadline: give up with
    /// [`alps_core::AlpsError::Timeout`] if the buffer stays full for
    /// `ticks` virtual microseconds. A timed-out deposit leaves the
    /// buffer contents unchanged.
    ///
    /// # Errors
    ///
    /// As [`deposit`](Self::deposit), plus `Timeout` on expiry.
    pub fn deposit_deadline(&self, _rt: &Runtime, v: i64, ticks: u64) -> Result<()> {
        self.obj.call_id_deadline(self.deposit, argv![v], ticks)?;
        Ok(())
    }

    /// [`remove`](Self::remove) bounded by a deadline: give up with
    /// [`alps_core::AlpsError::Timeout`] if the buffer stays empty for
    /// `ticks` virtual microseconds.
    ///
    /// # Errors
    ///
    /// As [`remove`](Self::remove), plus `Timeout` on expiry.
    pub fn remove_deadline(&self, _rt: &Runtime, ticks: u64) -> Result<i64> {
        let r = self.obj.call_id_deadline(self.remove, argv![], ticks)?;
        r[0].as_int()
    }

    /// The underlying object handle (stats, shutdown, …).
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

/// Baseline: the same buffer on a [`Monitor`] with two condition
/// variables — the style the paper criticizes because "the scheduling
/// algorithm gets scattered across the various procedures" (§1).
#[derive(Debug, Clone)]
pub struct MonitorBuffer {
    mon: Monitor<VecDeque<i64>>,
    cap: usize,
}

const NOT_FULL: Cond = Cond(0);
const NOT_EMPTY: Cond = Cond(1);

impl MonitorBuffer {
    /// New monitor-based buffer with capacity `n`.
    pub fn new(n: usize) -> MonitorBuffer {
        assert!(n > 0, "buffer capacity must be positive");
        MonitorBuffer {
            mon: Monitor::new(2, VecDeque::new()),
            cap: n,
        }
    }

    /// Deposit, blocking while full.
    pub fn deposit(&self, rt: &Runtime, v: i64) {
        let mut g = self.mon.enter(rt);
        while g.data().len() >= self.cap {
            g.wait(NOT_FULL);
        }
        g.data().push_back(v);
        g.signal(NOT_EMPTY);
    }

    /// Remove, blocking while empty.
    pub fn remove(&self, rt: &Runtime) -> i64 {
        let mut g = self.mon.enter(rt);
        while g.data().is_empty() {
            g.wait(NOT_EMPTY);
        }
        let v = g.data().pop_front().expect("checked non-empty");
        g.signal(NOT_FULL);
        v
    }
}

/// Baseline: a bare bounded channel (the "don't build an object at all"
/// floor for E1).
#[derive(Debug, Clone)]
pub struct ChanBuffer {
    chan: alps_runtime::Chan<i64>,
}

impl ChanBuffer {
    /// New channel-based buffer with capacity `n`.
    pub fn new(n: usize) -> ChanBuffer {
        ChanBuffer {
            chan: alps_runtime::Chan::bounded("buffer", n),
        }
    }

    /// Deposit, blocking while full.
    pub fn deposit(&self, rt: &Runtime, v: i64) {
        self.chan.send(rt, v).expect("channel open");
    }

    /// Remove, blocking while empty.
    pub fn remove(&self, rt: &Runtime) -> i64 {
        self.chan.recv(rt).expect("channel open")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    fn producer_consumer_alps(cap: usize, items: i64) -> Vec<i64> {
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let buf = AlpsBuffer::spawn(rt, cap).unwrap();
            let (b2, rt2) = (buf.clone(), rt.clone());
            let producer = rt.spawn_with(Spawn::new("producer"), move || {
                for i in 0..items {
                    b2.deposit(&rt2, i).unwrap();
                }
            });
            let mut out = Vec::new();
            for _ in 0..items {
                out.push(buf.remove(rt).unwrap());
            }
            producer.join().unwrap();
            out
        })
        .unwrap()
    }

    #[test]
    fn fifo_order_for_various_capacities() {
        for cap in [1, 2, 7] {
            let got = producer_consumer_alps(cap, 25);
            assert_eq!(got, (0..25).collect::<Vec<_>>(), "cap={cap}");
        }
    }

    #[test]
    fn capacity_backpressure_blocks_producer() {
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let buf = AlpsBuffer::spawn(rt, 2).unwrap();
            let (b2, rt2) = (buf.clone(), rt.clone());
            let producer = rt.spawn_with(Spawn::new("producer"), move || {
                for i in 0..4 {
                    b2.deposit(&rt2, i).unwrap();
                }
            });
            for _ in 0..20 {
                rt.yield_now();
            }
            // Producer deposited 2, is blocked on the 3rd: #Deposit == 1.
            assert_eq!(buf.object().pending("Deposit").unwrap(), 1);
            for want in 0..4 {
                assert_eq!(buf.remove(rt).unwrap(), want);
            }
            producer.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn shedding_buffer_answers_overload_instead_of_parking() {
        use alps_core::AlpsError;
        use std::sync::atomic::{AtomicU64, Ordering};

        let sim = SimRuntime::new();
        sim.run(|rt| {
            // Slow bodies (copy_cost 40) keep the manager busy so the
            // 2-deep intake ring actually fills under the storm.
            let buf = AlpsBuffer::build(rt, 16, 40, Some(2)).unwrap();
            let ok = Arc::new(AtomicU64::new(0));
            let shed = Arc::new(AtomicU64::new(0));
            let mut hs = Vec::new();
            for i in 0..12 {
                let (b2, rt2) = (buf.clone(), rt.clone());
                let (ok2, shed2) = (Arc::clone(&ok), Arc::clone(&shed));
                hs.push(rt.spawn_with(
                    Spawn::new(format!("p{i}")),
                    move || match b2.deposit(&rt2, i) {
                        Ok(()) => {
                            ok2.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(AlpsError::Overloaded { .. }) => {
                            shed2.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    },
                ));
            }
            for h in hs {
                h.join().unwrap();
            }
            let (ok, shed) = (ok.load(Ordering::SeqCst), shed.load(Ordering::SeqCst));
            // Every caller got an answer — admitted or shed, never hung.
            assert_eq!(ok + shed, 12);
            assert!(shed > 0, "storm should overflow the 2-deep intake");
            assert_eq!(buf.object().stats().sheds(), shed);
            // Admitted deposits really landed: drain them all back out.
            for _ in 0..ok {
                buf.remove(rt).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn monitor_buffer_equivalent_behaviour() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let buf = MonitorBuffer::new(3);
                let (b2, rt2) = (buf.clone(), rt.clone());
                let producer = rt.spawn_with(Spawn::new("producer"), move || {
                    for i in 0..10 {
                        b2.deposit(&rt2, i);
                    }
                });
                let out: Vec<i64> = (0..10).map(|_| buf.remove(rt)).collect();
                producer.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chan_buffer_equivalent_behaviour() {
        let sim = SimRuntime::new();
        let got = sim
            .run(|rt| {
                let buf = ChanBuffer::new(3);
                let (b2, rt2) = (buf.clone(), rt.clone());
                let producer = rt.spawn_with(Spawn::new("producer"), move || {
                    for i in 0..10 {
                        b2.deposit(&rt2, i);
                    }
                });
                let out: Vec<i64> = (0..10).map(|_| buf.remove(rt)).collect();
                producer.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn alps_buffer_works_threaded() {
        let rt = Runtime::threaded();
        let buf = AlpsBuffer::spawn(&rt, 4).unwrap();
        let (b2, rt2) = (buf.clone(), rt.clone());
        let producer = rt.spawn_with(Spawn::new("producer"), move || {
            for i in 0..100 {
                b2.deposit(&rt2, i).unwrap();
            }
        });
        let out: Vec<i64> = (0..100).map(|_| buf.remove(&rt).unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        buf.object().shutdown();
    }
}
