//! The readers–writers database of paper §2.5.1 — the example that
//! motivates hidden procedure arrays — plus monitor, serializer, and
//! path-expression baselines (experiment E2).
//!
//! Policy (from the paper): a reader is admitted if fewer than `ReadMax`
//! readers are active *and* (no writer is pending *or* a writer has just
//! used the database — the disjunction that prevents reader starvation);
//! a writer is admitted when no reader is active and (no reader is
//! pending *or* the writer is due its turn). No indefinite delay for
//! either class.

use std::sync::Arc;

use alps_core::{vals, EntryDef, Guard, ObjectBuilder, ObjectHandle, Result, Selected};
use alps_runtime::metrics::EventLog;
use alps_runtime::Runtime;
use alps_sync::{Cond, Crowd, Monitor, PathController, Queue, Serializer};

/// Semantic events recorded by all implementations, for invariant checks
/// and latency measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwEvent {
    /// A reader entered the database.
    ReadStart,
    /// A reader left.
    ReadEnd,
    /// A writer entered.
    WriteStart,
    /// A writer left.
    WriteEnd,
}

/// Configuration shared by every implementation.
#[derive(Debug, Clone)]
pub struct RwConfig {
    /// Maximum concurrent readers (the paper's `ReadMax`).
    pub read_max: usize,
    /// Simulated ticks a read spends in the database.
    pub read_cost: u64,
    /// Simulated ticks a write spends in the database.
    pub write_cost: u64,
}

impl Default for RwConfig {
    fn default() -> Self {
        RwConfig {
            read_max: 4,
            read_cost: 100,
            write_cost: 200,
        }
    }
}

/// Shared trait over the four implementations so E2 sweeps them
/// uniformly.
pub trait RwDatabase: Send + Sync {
    /// Perform a read (blocking until admitted, spending `read_cost`).
    fn read(&self, rt: &Runtime);
    /// Perform a write.
    fn write(&self, rt: &Runtime);
    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's manager-scheduled readers–writers object.
#[derive(Debug, Clone)]
pub struct AlpsRw {
    obj: ObjectHandle,
}

impl AlpsRw {
    /// Build the object: `Read` as a hidden procedure array of `ReadMax`
    /// elements, `Write` as a single intercepted procedure, the paper's
    /// manager policy.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(
        rt: &Runtime,
        cfg: RwConfig,
        log: Option<Arc<EventLog<RwEvent>>>,
    ) -> Result<AlpsRw> {
        let read_max = cfg.read_max.max(1);
        let log_r = log.clone();
        let log_w = log;
        let (read_cost, write_cost) = (cfg.read_cost, cfg.write_cost);
        let obj = ObjectBuilder::new("Database")
            .entry(
                EntryDef::new("Read")
                    .array(read_max)
                    .intercepted()
                    .body(move |ctx, _| {
                        if let Some(l) = &log_r {
                            l.record(ctx.now(), RwEvent::ReadStart);
                        }
                        ctx.sleep(read_cost);
                        if let Some(l) = &log_r {
                            l.record(ctx.now(), RwEvent::ReadEnd);
                        }
                        Ok(vec![])
                    }),
            )
            .entry(EntryDef::new("Write").intercepted().body(move |ctx, _| {
                if let Some(l) = &log_w {
                    l.record(ctx.now(), RwEvent::WriteStart);
                }
                ctx.sleep(write_cost);
                if let Some(l) = &log_w {
                    l.record(ctx.now(), RwEvent::WriteEnd);
                }
                Ok(vec![])
            }))
            .manager(move |mgr| {
                let mut read_count = 0usize;
                let mut writer_last = false;
                loop {
                    let sel = mgr.select(vec![
                        // accept Read[i] when ReadCount < ReadMax and
                        //   (#Write = 0 or WriterLast)
                        Guard::accept("Read").when(move |v| {
                            read_count < read_max && (v.pending("Write") == 0 || writer_last)
                        }),
                        // await Read[i]
                        Guard::await_done("Read"),
                        // accept Write when ReadCount = 0 and
                        //   (#Read = 0 or not WriterLast)
                        Guard::accept("Write").when(move |v| {
                            read_count == 0 && (v.pending("Read") == 0 || !writer_last)
                        }),
                    ])?;
                    match sel {
                        Selected::Accepted { guard: 0, call } => {
                            mgr.start_as_is(call)?;
                            read_count += 1;
                            writer_last = false;
                        }
                        Selected::Ready { done, .. } => {
                            mgr.finish_as_is(done)?;
                            read_count -= 1;
                        }
                        Selected::Accepted { guard: 2, call } => {
                            // Writers run in exclusion: execute blocks the
                            // manager, and the guard required ReadCount=0.
                            mgr.execute(call)?;
                            writer_last = true;
                        }
                        _ => unreachable!(),
                    }
                }
            })
            .spawn(rt)?;
        Ok(AlpsRw { obj })
    }

    /// The underlying object handle.
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

impl RwDatabase for AlpsRw {
    fn read(&self, _rt: &Runtime) {
        self.obj.call("Read", vals![]).expect("object open");
    }
    fn write(&self, _rt: &Runtime) {
        self.obj.call("Write", vals![]).expect("object open");
    }
    fn name(&self) -> &'static str {
        "alps-manager"
    }
}

/// Baseline 1: monitor-based readers–writers (conditions scattered across
/// the entry procedures, as the paper critiques).
#[derive(Debug, Clone)]
pub struct MonitorRw {
    mon: Monitor<RwState>,
    cfg: RwConfig,
    log: Option<Arc<EventLog<RwEvent>>>,
}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
    pending_writers: usize,
}

const OK_READ: Cond = Cond(0);
const OK_WRITE: Cond = Cond(1);

impl MonitorRw {
    /// New monitor-based database.
    pub fn new(cfg: RwConfig, log: Option<Arc<EventLog<RwEvent>>>) -> MonitorRw {
        MonitorRw {
            mon: Monitor::new(2, RwState::default()),
            cfg,
            log,
        }
    }
}

impl RwDatabase for MonitorRw {
    fn read(&self, rt: &Runtime) {
        {
            let mut g = self.mon.enter(rt);
            loop {
                let d = g.data();
                // Writers-preferred admission mirrors the paper's
                // starvation-avoidance roughly: readers yield to pending
                // writers.
                if !d.writer && d.pending_writers == 0 && d.readers < self.cfg.read_max {
                    break;
                }
                drop(d);
                g.wait(OK_READ);
            }
            g.data().readers += 1;
        }
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::ReadStart);
        }
        rt.sleep(self.cfg.read_cost);
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::ReadEnd);
        }
        {
            let mut g = self.mon.enter(rt);
            g.data().readers -= 1;
            if g.data().readers == 0 {
                g.signal(OK_WRITE);
            }
            g.signal_all(OK_READ);
        }
    }

    fn write(&self, rt: &Runtime) {
        {
            let mut g = self.mon.enter(rt);
            g.data().pending_writers += 1;
            loop {
                let d = g.data();
                if !d.writer && d.readers == 0 {
                    break;
                }
                drop(d);
                g.wait(OK_WRITE);
            }
            let mut d = g.data();
            d.pending_writers -= 1;
            d.writer = true;
        }
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::WriteStart);
        }
        rt.sleep(self.cfg.write_cost);
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::WriteEnd);
        }
        {
            let mut g = self.mon.enter(rt);
            g.data().writer = false;
            g.signal(OK_WRITE);
            g.signal_all(OK_READ);
        }
    }

    fn name(&self) -> &'static str {
        "monitor"
    }
}

/// Baseline 2: serializer-based readers–writers.
#[derive(Debug, Clone)]
pub struct SerializerRw {
    ser: Serializer,
    cfg: RwConfig,
    log: Option<Arc<EventLog<RwEvent>>>,
}

const Q_READ: Queue = Queue(0);
const Q_WRITE: Queue = Queue(1);
const READERS: Crowd = Crowd(0);
const WRITERS: Crowd = Crowd(1);

impl SerializerRw {
    /// New serializer-based database.
    pub fn new(cfg: RwConfig, log: Option<Arc<EventLog<RwEvent>>>) -> SerializerRw {
        SerializerRw {
            ser: Serializer::new(2, 2),
            cfg,
            log,
        }
    }
}

impl RwDatabase for SerializerRw {
    fn read(&self, rt: &Runtime) {
        let read_max = self.cfg.read_max;
        let (log, cost) = (self.log.clone(), self.cfg.read_cost);
        let rt2 = rt.clone();
        self.ser.run(
            rt,
            Q_READ,
            move |v| {
                v.crowds[WRITERS.0] == 0
                    && v.crowds[READERS.0] < read_max
                    && v.queue_lens[Q_WRITE.0] == 0
            },
            READERS,
            move || {
                if let Some(l) = &log {
                    l.record(rt2.now(), RwEvent::ReadStart);
                }
                rt2.sleep(cost);
                if let Some(l) = &log {
                    l.record(rt2.now(), RwEvent::ReadEnd);
                }
            },
        );
    }

    fn write(&self, rt: &Runtime) {
        let (log, cost) = (self.log.clone(), self.cfg.write_cost);
        let rt2 = rt.clone();
        self.ser.run(
            rt,
            Q_WRITE,
            |v| v.crowds[READERS.0] == 0 && v.crowds[WRITERS.0] == 0,
            WRITERS,
            move || {
                if let Some(l) = &log {
                    l.record(rt2.now(), RwEvent::WriteStart);
                }
                rt2.sleep(cost);
                if let Some(l) = &log {
                    l.record(rt2.now(), RwEvent::WriteEnd);
                }
            },
        );
    }

    fn name(&self) -> &'static str {
        "serializer"
    }
}

/// Baseline 3: path-expression-controlled readers–writers
/// (`path 1:(ReadMax:(read), write) end`).
///
/// Note a well-known limitation of basic open path expressions that this
/// baseline makes measurable: under the standard semaphore translation
/// the outer `1:(…)` is held for the *duration* of each operation, so
/// readers are serialized — expressing reader sharing requires auxiliary
/// bracket operations the basic notation does not have. This is part of
/// the expressiveness gap the ALPS manager closes (E2 shows it as a
/// throughput gap at read-heavy mixes).
#[derive(Debug)]
pub struct PathRw {
    ctl: Arc<PathController>,
    cfg: RwConfig,
    log: Option<Arc<EventLog<RwEvent>>>,
}

impl PathRw {
    /// Compile the classic readers–writers path expression for the given
    /// `ReadMax`.
    pub fn new(cfg: RwConfig, log: Option<Arc<EventLog<RwEvent>>>) -> PathRw {
        let src = format!("path 1:({}:(read), write) end", cfg.read_max.max(1));
        let ctl = Arc::new(PathController::compile(&src).expect("valid expression"));
        PathRw { ctl, cfg, log }
    }
}

impl RwDatabase for PathRw {
    fn read(&self, rt: &Runtime) {
        self.ctl.enter(rt, "read").expect("op exists");
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::ReadStart);
        }
        rt.sleep(self.cfg.read_cost);
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::ReadEnd);
        }
        self.ctl.exit(rt, "read").expect("op exists");
    }

    fn write(&self, rt: &Runtime) {
        self.ctl.enter(rt, "write").expect("op exists");
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::WriteStart);
        }
        rt.sleep(self.cfg.write_cost);
        if let Some(l) = &self.log {
            l.record(rt.now(), RwEvent::WriteEnd);
        }
        self.ctl.exit(rt, "write").expect("op exists");
    }

    fn name(&self) -> &'static str {
        "path-expression"
    }
}

/// Check the two safety invariants on an event log: no reader overlaps a
/// writer, and never more than `read_max` concurrent readers. Returns the
/// peak reader concurrency observed.
///
/// # Panics
///
/// Panics on an inconsistent log (more ends than starts).
pub fn check_rw_invariants(events: &[(u64, RwEvent)], read_max: usize) -> usize {
    let mut readers = 0usize;
    let mut writers = 0usize;
    let mut peak = 0usize;
    for (t, e) in events {
        match e {
            RwEvent::ReadStart => {
                readers += 1;
                peak = peak.max(readers);
                assert_eq!(writers, 0, "reader overlaps writer at t={t}");
                assert!(
                    readers <= read_max,
                    "{readers} readers exceed ReadMax={read_max} at t={t}"
                );
            }
            RwEvent::ReadEnd => readers = readers.checked_sub(1).expect("unbalanced ReadEnd"),
            RwEvent::WriteStart => {
                writers += 1;
                assert_eq!(readers, 0, "writer overlaps readers at t={t}");
                assert_eq!(writers, 1, "two writers overlap at t={t}");
            }
            RwEvent::WriteEnd => writers = writers.checked_sub(1).expect("unbalanced WriteEnd"),
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    fn exercise(db: Arc<dyn RwDatabase>, rt: &Runtime, readers: usize, writers: usize) {
        let mut hs = Vec::new();
        for i in 0..readers {
            let (db2, rt2) = (Arc::clone(&db), rt.clone());
            hs.push(rt.spawn_with(Spawn::new(format!("reader{i}")), move || {
                for _ in 0..3 {
                    db2.read(&rt2);
                }
            }));
        }
        for i in 0..writers {
            let (db2, rt2) = (Arc::clone(&db), rt.clone());
            hs.push(rt.spawn_with(Spawn::new(format!("writer{i}")), move || {
                for _ in 0..3 {
                    db2.write(&rt2);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
    }

    fn run_impl(which: &str) -> (Vec<(u64, RwEvent)>, usize) {
        let which = which.to_string();
        let sim = SimRuntime::new();
        let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
        let log2 = Arc::clone(&log);
        let cfg = RwConfig {
            read_max: 3,
            read_cost: 50,
            write_cost: 80,
        };
        sim.run(move |rt| {
            let db: Arc<dyn RwDatabase> = match which.as_str() {
                "alps" => {
                    Arc::new(AlpsRw::spawn(rt, cfg.clone(), Some(Arc::clone(&log2))).unwrap())
                }
                "monitor" => Arc::new(MonitorRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                "serializer" => Arc::new(SerializerRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                "path" => Arc::new(PathRw::new(cfg.clone(), Some(Arc::clone(&log2)))),
                other => panic!("unknown impl {other}"),
            };
            exercise(db, rt, 6, 2);
        })
        .unwrap();
        let events = log.snapshot();
        let peak = check_rw_invariants(&events, 3);
        (events, peak)
    }

    #[test]
    fn alps_rw_safety_and_sharing() {
        let (events, peak) = run_impl("alps");
        assert_eq!(events.len(), (6 * 3 + 2 * 3) * 2);
        assert!(peak >= 2, "readers never shared: peak={peak}");
    }

    #[test]
    fn monitor_rw_safety() {
        let (events, peak) = run_impl("monitor");
        assert_eq!(events.len(), 48);
        assert!(peak >= 1);
    }

    #[test]
    fn serializer_rw_safety_and_sharing() {
        let (events, peak) = run_impl("serializer");
        assert_eq!(events.len(), 48);
        assert!(peak >= 2, "readers never shared: peak={peak}");
    }

    #[test]
    fn path_rw_safety() {
        let (events, peak) = run_impl("path");
        assert_eq!(events.len(), 48);
        // Basic open path expressions serialize readers (see the PathRw
        // docs); safety holds but sharing is not expressible.
        assert_eq!(peak, 1);
    }

    #[test]
    fn read_max_is_respected_by_alps() {
        let sim = SimRuntime::new();
        let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
        let log2 = Arc::clone(&log);
        sim.run(move |rt| {
            let cfg = RwConfig {
                read_max: 2,
                read_cost: 100,
                write_cost: 0,
            };
            let db = Arc::new(AlpsRw::spawn(rt, cfg, Some(Arc::clone(&log2))).unwrap());
            let db2: Arc<dyn RwDatabase> = db;
            exercise(db2, rt, 5, 0);
        })
        .unwrap();
        let peak = check_rw_invariants(&log.snapshot(), 2);
        assert_eq!(peak, 2, "expected full use of ReadMax");
    }

    #[test]
    fn writers_not_starved_by_reader_stream() {
        // Readers arrive continuously; the paper's WriterLast disjunction
        // must still admit the writer in bounded time.
        let sim = SimRuntime::new();
        let wrote_at = sim
            .run(|rt| {
                let cfg = RwConfig {
                    read_max: 2,
                    read_cost: 50,
                    write_cost: 10,
                };
                let db = Arc::new(AlpsRw::spawn(rt, cfg, None).unwrap());
                let mut hs = Vec::new();
                for i in 0..4 {
                    let (db2, rt2) = (Arc::clone(&db), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("reader{i}")), move || {
                        for _ in 0..10 {
                            db2.read(&rt2);
                        }
                    }));
                }
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                let w = rt.spawn_with(Spawn::new("writer"), move || {
                    db2.write(&rt2);
                    rt2.now()
                });
                let wrote_at = w.join().unwrap();
                for h in hs {
                    h.join().unwrap();
                }
                (wrote_at, rt.now())
            })
            .unwrap();
        // The writer finished well before the end of the reader stream.
        assert!(
            wrote_at.0 < wrote_at.1,
            "writer only ran after all readers: {wrote_at:?}"
        );
    }
}
