//! The printer spooler of paper §2.8.1 — hidden parameters and results.
//!
//! The manager allocates a free printer when it accepts a `Print` call and
//! passes the printer number to the body as a *hidden parameter*; the body
//! returns the printer number as a *hidden result*, which "eliminates a
//! lot of bookkeeping for the manager to remember which printer has been
//! allocated to which procedure". Experiment E4 measures utilisation and
//! queueing against printer count.

use std::sync::Arc;

use alps_core::{
    vals, EntryDef, Guard, ObjectBuilder, ObjectHandle, RestartPolicy, Result, RetryPolicy,
    Selected, Ty, Value,
};
use alps_runtime::metrics::{Counter, Histogram};
use alps_runtime::Runtime;

/// Configuration for the spooler object.
#[derive(Debug, Clone)]
pub struct SpoolerConfig {
    /// Number of printers in the pool.
    pub printers: usize,
    /// Elements of the hidden `Print` procedure array.
    pub print_max: usize,
    /// Simulated ticks to print one byte.
    pub ticks_per_byte: u64,
}

impl Default for SpoolerConfig {
    fn default() -> Self {
        SpoolerConfig {
            printers: 2,
            print_max: 8,
            ticks_per_byte: 2,
        }
    }
}

/// Per-printer instrumentation: jobs printed and busy ticks.
#[derive(Debug, Clone, Default)]
pub struct PrinterStats {
    /// Jobs completed per printer.
    pub jobs: Vec<u64>,
    /// Busy ticks accumulated per printer.
    pub busy: Vec<u64>,
}

/// The spooler object.
#[derive(Debug, Clone)]
pub struct Spooler {
    obj: ObjectHandle,
    printers: usize,
    jobs: Arc<Vec<Counter>>,
    busy: Arc<Vec<Counter>>,
    queue_wait: Arc<Histogram>,
}

impl Spooler {
    /// Build the spooler: `Print(file)` is exported as a single procedure
    /// and implemented as an array; the manager holds the free-printer
    /// list.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(rt: &Runtime, cfg: SpoolerConfig) -> Result<Spooler> {
        Self::build(rt, cfg, None)
    }

    /// Like [`spawn`](Self::spawn), but the object is supervised: when a
    /// `Print` body panics (a wedged printer), the runtime sweeps the
    /// in-flight calls, re-enters the manager from the top — which
    /// rebuilds the free-printer list, since it lives in a manager-local
    /// variable — and keeps serving. Swept callers see
    /// [`alps_core::AlpsError::ObjectRestarting`] and can retry with
    /// [`print_retry`](Self::print_retry).
    ///
    /// # Examples
    ///
    /// ```
    /// use alps_core::{RestartPolicy, RetryPolicy};
    /// use alps_paper::spooler::{Spooler, SpoolerConfig};
    /// use alps_runtime::{FaultPlan, SimRuntime};
    ///
    /// let sim = SimRuntime::new();
    /// // The very first print job panics inside the printer body.
    /// sim.set_fault_plan(FaultPlan::new().panic_at("body", 1));
    /// sim.run(|rt| {
    ///     let sp = Spooler::spawn_supervised(
    ///         rt,
    ///         SpoolerConfig::default(),
    ///         RestartPolicy::AlwaysFresh,
    ///     )
    ///     .unwrap();
    ///     // The panic poisons the first attempt; the supervisor rebuilds
    ///     // the spooler and the retry lands on the fresh generation.
    ///     sp.print_retry(rt, "report.txt", 100, RetryPolicy::new(5, 100_000))
    ///         .unwrap();
    ///     assert_eq!(sp.object().stats().restarts(), 1);
    /// })
    /// .unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn_supervised(
        rt: &Runtime,
        cfg: SpoolerConfig,
        policy: RestartPolicy,
    ) -> Result<Spooler> {
        Self::build(rt, cfg, Some(policy))
    }

    fn build(
        rt: &Runtime,
        cfg: SpoolerConfig,
        supervise: Option<RestartPolicy>,
    ) -> Result<Spooler> {
        let printers = cfg.printers.max(1);
        let jobs: Arc<Vec<Counter>> = Arc::new((0..printers).map(|_| Counter::new()).collect());
        let busy: Arc<Vec<Counter>> = Arc::new((0..printers).map(|_| Counter::new()).collect());
        let queue_wait = Arc::new(Histogram::new());
        let (jobs2, busy2) = (Arc::clone(&jobs), Arc::clone(&busy));
        let ticks_per_byte = cfg.ticks_per_byte;
        let builder = ObjectBuilder::new("Spooler")
            .entry(
                EntryDef::new("Print")
                    .params([Ty::Str, Ty::Int]) // file name, size in bytes
                    .array(cfg.print_max.max(1))
                    .intercepted()
                    .hidden_params([Ty::Int]) // printer number (manager → body)
                    .hidden_results([Ty::Int]) // printer number (body → manager)
                    .body(move |ctx, args| {
                        let size = args[1].as_int()?.max(0) as u64;
                        let printer = args[2].as_int()?; // hidden parameter
                        let cost = size * ticks_per_byte;
                        ctx.sleep(cost);
                        jobs2[printer as usize].incr();
                        busy2[printer as usize].add(cost);
                        // Return the printer number as the hidden result.
                        Ok(vec![Value::Int(printer)])
                    }),
            )
            .manager(move |mgr| {
                let mut free: Vec<i64> = (0..printers as i64).collect();
                loop {
                    let have_free = !free.is_empty();
                    let sel = mgr.select(vec![
                        Guard::accept("Print").when(move |_| have_free),
                        Guard::await_done("Print"),
                    ])?;
                    match sel {
                        Selected::Accepted { call, .. } => {
                            let p = free.pop().expect("guard checked a free printer");
                            // start Print[i](printer as hidden parameter)
                            mgr.start(call, vals![], vals![p])?;
                        }
                        Selected::Ready { done, .. } => {
                            // The hidden result hands the printer back.
                            let p = done.hidden()[0].as_int()?;
                            free.push(p);
                            mgr.finish_as_is(done)?;
                        }
                        _ => unreachable!(),
                    }
                }
            });
        // The free-printer list is a manager-local, so a supervised
        // restart rebuilds it for free when the body is re-entered.
        let obj = match supervise {
            Some(policy) => builder.supervise(policy),
            None => builder,
        }
        .spawn(rt)?;
        Ok(Spooler {
            obj,
            printers,
            jobs,
            busy,
            queue_wait,
        })
    }

    /// Submit a print job and wait for completion.
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn print(&self, rt: &Runtime, file: &str, bytes: i64) -> Result<()> {
        let t0 = rt.now();
        self.obj.call("Print", vals![file, bytes])?;
        self.queue_wait.record(rt.now().saturating_sub(t0));
        Ok(())
    }

    /// [`print`](Self::print) bounded by a deadline: give up with
    /// [`alps_core::AlpsError::Timeout`] if the job has not completed
    /// within `ticks` virtual microseconds (e.g. every printer busy with
    /// long jobs). A job whose printing already *started* keeps the
    /// printer until it finishes — cancellation is cooperative — but its
    /// result is discarded and the printer is still returned to the free
    /// list through the hidden result.
    ///
    /// # Errors
    ///
    /// As [`print`](Self::print), plus `Timeout` on expiry.
    pub fn print_deadline(&self, rt: &Runtime, file: &str, bytes: i64, ticks: u64) -> Result<()> {
        let t0 = rt.now();
        self.obj.call_deadline("Print", vals![file, bytes], ticks)?;
        self.queue_wait.record(rt.now().saturating_sub(t0));
        Ok(())
    }

    /// [`print`](Self::print) with caller-side retry: transient failures
    /// — [`alps_core::AlpsError::ObjectRestarting`] from a supervised
    /// restart, [`alps_core::AlpsError::Overloaded`] sheds, or per-attempt
    /// timeouts — are retried under `policy`'s attempt and tick budget.
    /// Delivered errors (a printer body that *ran* and failed) are not.
    ///
    /// # Errors
    ///
    /// As [`print`](Self::print), plus `Timeout` when the retry budget is
    /// exhausted without a successful attempt.
    pub fn print_retry(
        &self,
        rt: &Runtime,
        file: &str,
        bytes: i64,
        policy: RetryPolicy,
    ) -> Result<()> {
        let t0 = rt.now();
        self.obj.call_retry("Print", vals![file, bytes], policy)?;
        self.queue_wait.record(rt.now().saturating_sub(t0));
        Ok(())
    }

    /// Per-printer job and busy-tick counts.
    pub fn printer_stats(&self) -> PrinterStats {
        PrinterStats {
            jobs: self.jobs.iter().map(Counter::get).collect(),
            busy: self.busy.iter().map(Counter::get).collect(),
        }
    }

    /// End-to-end latency histogram of submitted jobs.
    pub fn latency(&self) -> &Histogram {
        &self.queue_wait
    }

    /// Number of printers.
    pub fn printers(&self) -> usize {
        self.printers
    }

    /// The underlying object handle.
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    #[test]
    fn jobs_complete_and_printers_are_returned() {
        let sim = SimRuntime::new();
        let stats = sim
            .run(|rt| {
                let sp = Spooler::spawn(
                    rt,
                    SpoolerConfig {
                        printers: 2,
                        print_max: 4,
                        ticks_per_byte: 1,
                    },
                )
                .unwrap();
                let mut hs = Vec::new();
                for i in 0..6 {
                    let (sp2, rt2) = (sp.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("job{i}")), move || {
                        sp2.print(&rt2, &format!("file{i}"), 100).unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                sp.printer_stats()
            })
            .unwrap();
        assert_eq!(stats.jobs.iter().sum::<u64>(), 6);
        // Both printers were used (manager hands out whatever is free).
        assert!(stats.jobs.iter().all(|&j| j > 0), "{stats:?}");
    }

    #[test]
    fn two_printers_halve_makespan_vs_one() {
        fn makespan(printers: usize) -> u64 {
            let sim = SimRuntime::new();
            sim.run(move |rt| {
                let sp = Spooler::spawn(
                    rt,
                    SpoolerConfig {
                        printers,
                        print_max: 8,
                        ticks_per_byte: 1,
                    },
                )
                .unwrap();
                let t0 = rt.now();
                let mut hs = Vec::new();
                for i in 0..8 {
                    let (sp2, rt2) = (sp.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("job{i}")), move || {
                        sp2.print(&rt2, "f", 1000).unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                rt.now() - t0
            })
            .unwrap()
        }
        let one = makespan(1);
        let two = makespan(2);
        assert!(
            two * 2 <= one + 1000,
            "two printers should halve the makespan: one={one} two={two}"
        );
    }

    #[test]
    fn supervised_spooler_survives_a_wedged_printer() {
        use alps_core::{RestartPolicy, RetryPolicy};
        use alps_runtime::FaultPlan;

        let sim = SimRuntime::new();
        // The 2nd print body panics mid-job: the printer wedges, the
        // supervisor sweeps and rebuilds the free list from scratch.
        sim.set_fault_plan(FaultPlan::new().panic_at("body", 2));
        let (stats, restarts) = sim
            .run(|rt| {
                let sp = Spooler::spawn_supervised(
                    rt,
                    SpoolerConfig {
                        printers: 2,
                        print_max: 4,
                        ticks_per_byte: 1,
                    },
                    RestartPolicy::AlwaysFresh,
                )
                .unwrap();
                let mut hs = Vec::new();
                for i in 0..6 {
                    let (sp2, rt2) = (sp.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("job{i}")), move || {
                        sp2.print_retry(
                            &rt2,
                            &format!("file{i}"),
                            40,
                            RetryPolicy::new(8, 1_000_000),
                        )
                        .unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                (sp.printer_stats(), sp.object().stats().restarts())
            })
            .unwrap();
        assert_eq!(restarts, 1);
        // Every job eventually printed (the panicked attempt retried).
        assert!(stats.jobs.iter().sum::<u64>() >= 6, "{stats:?}");
    }

    #[test]
    fn never_more_jobs_in_flight_than_printers() {
        // busy ticks per printer must not exceed the total makespan.
        let sim = SimRuntime::new();
        let (stats, makespan) = sim
            .run(|rt| {
                let sp = Spooler::spawn(
                    rt,
                    SpoolerConfig {
                        printers: 3,
                        print_max: 9,
                        ticks_per_byte: 1,
                    },
                )
                .unwrap();
                let t0 = rt.now();
                let mut hs = Vec::new();
                for i in 0..9 {
                    let (sp2, rt2) = (sp.clone(), rt.clone());
                    hs.push(rt.spawn_with(Spawn::new(format!("job{i}")), move || {
                        sp2.print(&rt2, "f", 50 + 10 * i).unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                (sp.printer_stats(), rt.now() - t0)
            })
            .unwrap();
        for (p, &b) in stats.busy.iter().enumerate() {
            assert!(b <= makespan, "printer {p} busier than wall clock");
        }
    }
}
