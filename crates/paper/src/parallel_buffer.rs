//! The parallel bounded buffer of paper §2.8.2 — the culminating example.
//!
//! Several producers and consumers are serviced *in parallel*: `Deposit`
//! and `Remove` are hidden procedure arrays; when the manager accepts a
//! `Deposit[i]` it allocates a free buffer slot from its `Free` list and
//! passes the index as a hidden parameter, so the body copies the
//! (potentially long) message into the slot without further
//! synchronization; the body returns the slot index as a hidden result,
//! which the manager moves to the `Full` list at `finish`. `Remove`
//! mirrors this with the `Full` list. Experiment E5 compares against the
//! serial manager of §2.4.1 as the message copy cost grows.

use std::sync::Arc;

use alps_core::{
    argv, vals, EntryDef, EntryId, Guard, ObjectBuilder, ObjectHandle, Result, Selected, Ty, Value,
};
use alps_runtime::Runtime;
use parking_lot::Mutex;

/// Configuration for the parallel buffer.
#[derive(Debug, Clone)]
pub struct ParBufConfig {
    /// Buffer capacity `N` (slots).
    pub slots: usize,
    /// `ProducerMax` — elements of the `Deposit` procedure array.
    pub producer_max: usize,
    /// `ConsumerMax` — elements of the `Remove` procedure array.
    pub consumer_max: usize,
    /// Simulated ticks to copy a message into or out of a slot (the
    /// "potentially long messages" of the paper).
    pub copy_cost: u64,
}

impl Default for ParBufConfig {
    fn default() -> Self {
        ParBufConfig {
            slots: 8,
            producer_max: 4,
            consumer_max: 4,
            copy_cost: 100,
        }
    }
}

/// The parallel bounded buffer object.
#[derive(Debug, Clone)]
pub struct ParallelBuffer {
    obj: ObjectHandle,
    deposit: EntryId,
    remove: EntryId,
}

impl ParallelBuffer {
    /// Build the object per §2.8.2.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(rt: &Runtime, cfg: ParBufConfig) -> Result<ParallelBuffer> {
        let n = cfg.slots.max(1);
        // Buf: array 0..N-1 of Message, one lock per slot: the manager
        // hands out disjoint indices, so slot locks are uncontended; they
        // exist to keep the Rust API safe.
        let buf: Arc<Vec<Mutex<Value>>> =
            Arc::new((0..n).map(|_| Mutex::new(Value::Unit)).collect());
        let (buf_d, buf_r) = (Arc::clone(&buf), Arc::clone(&buf));
        let copy = cfg.copy_cost;
        let obj = ObjectBuilder::new("ParBuffer")
            .entry(
                // proc Deposit[1..ProducerMax](M: Message; Place: int)
                //   returns (int /* hidden */)
                EntryDef::new("Deposit")
                    .params([Ty::Int])
                    .array(cfg.producer_max.max(1))
                    .intercepted()
                    .hidden_params([Ty::Int])
                    .hidden_results([Ty::Int])
                    .body(move |ctx, args| {
                        let place = args[1].as_int()? as usize;
                        ctx.sleep(copy); // copy the long message in
                        *buf_d[place].lock() = args[0].clone();
                        // return (Place) as the hidden result
                        Ok(vec![Value::Int(place as i64)])
                    }),
            )
            .entry(
                // proc Remove[1..ConsumerMax](Place: int /* hidden */)
                //   returns (Message, int /* hidden */)
                EntryDef::new("Remove")
                    .results([Ty::Int])
                    .array(cfg.consumer_max.max(1))
                    .intercepted()
                    .hidden_params([Ty::Int])
                    .hidden_results([Ty::Int])
                    .body(move |ctx, args| {
                        let place = args[0].as_int()? as usize;
                        ctx.sleep(copy); // copy the long message out
                        let m = buf_r[place].lock().clone();
                        Ok(vec![m, Value::Int(place as i64)])
                    }),
            )
            .manager(move |mgr| {
                // Free/Full are the manager's two index lists; Max/Min
                // track their sizes as in the paper's code.
                let mut free: Vec<i64> = (0..n as i64).collect();
                let mut full: Vec<i64> = Vec::new();
                loop {
                    let can_deposit = !free.is_empty();
                    let can_remove = !full.is_empty();
                    let sel = mgr.select(vec![
                        Guard::accept("Deposit").when(move |_| can_deposit),
                        Guard::accept("Remove").when(move |_| can_remove),
                        Guard::await_done("Deposit"),
                        Guard::await_done("Remove"),
                    ])?;
                    match sel {
                        Selected::Accepted { guard: 0, call } => {
                            let place = free.pop().expect("guard checked");
                            let prefix = call.params().to_vec();
                            mgr.start(call, prefix, vals![place])?;
                        }
                        Selected::Accepted { guard: 1, call } => {
                            let place = full.remove(0); // FIFO across slots
                            mgr.start(call, vals![], vals![place])?;
                        }
                        Selected::Ready { done, .. } => {
                            let is_deposit = done.entry_name() == "Deposit";
                            let place = done.hidden()[0].as_int()?;
                            mgr.finish_as_is(done)?;
                            if is_deposit {
                                full.push(place);
                            } else {
                                free.push(place);
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            })
            .spawn(rt)?;
        let deposit = obj.entry_id("Deposit")?;
        let remove = obj.entry_id("Remove")?;
        Ok(ParallelBuffer {
            obj,
            deposit,
            remove,
        })
    }

    /// Deposit a message, blocking while no slot is free.
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn deposit(&self, v: i64) -> Result<()> {
        self.obj.call_id(self.deposit, argv![v])?;
        Ok(())
    }

    /// Remove some buffered message (any producer's), blocking while the
    /// buffer is empty.
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn remove(&self) -> Result<i64> {
        let r = self.obj.call_id(self.remove, argv![])?;
        r[0].as_int()
    }

    /// The underlying object handle.
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    fn run_parallel(
        cfg: ParBufConfig,
        producers: usize,
        consumers: usize,
        per: i64,
    ) -> (Vec<i64>, u64) {
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let buf = ParallelBuffer::spawn(rt, cfg).unwrap();
            let t0 = rt.now();
            let mut phs = Vec::new();
            for p in 0..producers {
                let b2 = buf.clone();
                phs.push(rt.spawn_with(Spawn::new(format!("prod{p}")), move || {
                    for i in 0..per {
                        b2.deposit(p as i64 * 1_000 + i).unwrap();
                    }
                }));
            }
            let mut chs = Vec::new();
            let total = producers as i64 * per;
            let per_cons = total / consumers as i64;
            for c in 0..consumers {
                let b2 = buf.clone();
                chs.push(rt.spawn_with(Spawn::new(format!("cons{c}")), move || {
                    (0..per_cons)
                        .map(|_| b2.remove().unwrap())
                        .collect::<Vec<i64>>()
                }));
            }
            for h in phs {
                h.join().unwrap();
            }
            let mut got: Vec<i64> = Vec::new();
            for h in chs {
                got.extend(h.join().unwrap());
            }
            (got, rt.now() - t0)
        })
        .unwrap()
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let (mut got, _) = run_parallel(ParBufConfig::default(), 4, 4, 10);
        got.sort_unstable();
        let mut want: Vec<i64> = (0..4)
            .flat_map(|p| (0..10).map(move |i| p * 1_000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn copies_overlap_in_virtual_time() {
        // With 4 producers/consumers and expensive copies, the parallel
        // buffer must beat the serial lower bound of (copies × cost).
        let cfg = ParBufConfig {
            slots: 8,
            producer_max: 4,
            consumer_max: 4,
            copy_cost: 500,
        };
        let per = 5i64;
        let (got, elapsed) = run_parallel(cfg, 4, 4, per);
        assert_eq!(got.len(), 20);
        let serial_bound = (2 * 20) as u64 * 500; // every copy serialized
        assert!(
            elapsed < serial_bound / 2,
            "copies did not overlap: {elapsed} vs serial {serial_bound}"
        );
    }

    #[test]
    fn single_slot_degenerates_to_alternation() {
        let cfg = ParBufConfig {
            slots: 1,
            producer_max: 2,
            consumer_max: 2,
            copy_cost: 10,
        };
        let (mut got, _) = run_parallel(cfg, 2, 2, 5);
        got.sort_unstable();
        let mut want: Vec<i64> = (0..2)
            .flat_map(|p| (0..5).map(move |i| p * 1_000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn works_threaded_too() {
        let rt = Runtime::threaded();
        let buf = ParallelBuffer::spawn(
            &rt,
            ParBufConfig {
                slots: 4,
                producer_max: 2,
                consumer_max: 2,
                copy_cost: 0,
            },
        )
        .unwrap();
        let b2 = buf.clone();
        let prod = rt.spawn_with(Spawn::new("prod"), move || {
            for i in 0..50 {
                b2.deposit(i).unwrap();
            }
        });
        let mut got: Vec<i64> = (0..50).map(|_| buf.remove().unwrap()).collect();
        prod.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        buf.object().shutdown();
    }
}
