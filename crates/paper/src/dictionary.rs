//! The dictionary database of paper §2.7.1 — request combining.
//!
//! "Since it is wasteful to execute multiple Search processes that search
//! for the meaning of the same word, the object's manager can be
//! programmed to recognize such requests and to combine them" — a
//! software adaptation of NYU Ultracomputer memory combining (§2.7).
//! Experiment E3 sweeps the duplicate rate and compares combining on/off.

use std::collections::HashMap;
use std::sync::Arc;

use alps_core::{
    argv, AcceptedCall, EntryDef, EntryId, Guard, ObjectBuilder, ObjectHandle, Result, Selected,
    Ty, Value,
};
use alps_runtime::Runtime;
use parking_lot::Mutex;

/// Configuration for the dictionary object.
#[derive(Debug, Clone)]
pub struct DictConfig {
    /// Elements of the hidden `Search` procedure array (`SearchMax`).
    pub search_max: usize,
    /// Simulated ticks one dictionary lookup costs.
    pub lookup_cost: u64,
    /// Whether the manager combines duplicate in-flight words.
    pub combining: bool,
}

impl Default for DictConfig {
    fn default() -> Self {
        DictConfig {
            search_max: 8,
            lookup_cost: 500,
            combining: true,
        }
    }
}

/// The dictionary object: one entry `Search(word) returns (meaning)`,
/// implemented as a hidden procedure array, with full parameter and
/// result interception (`intercepts Search(String; String)`).
#[derive(Debug, Clone)]
pub struct Dictionary {
    obj: ObjectHandle,
    search: EntryId,
}

impl Dictionary {
    /// Build the dictionary with the supplied word→meaning store.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(
        rt: &Runtime,
        cfg: DictConfig,
        entries: HashMap<String, String>,
    ) -> Result<Dictionary> {
        let store = Arc::new(entries);
        let store2 = Arc::clone(&store);
        let lookup_cost = cfg.lookup_cost;
        let combining = cfg.combining;
        let obj = ObjectBuilder::new("Dictionary")
            .entry(
                EntryDef::new("Search")
                    .params([Ty::Str])
                    .results([Ty::Str])
                    .array(cfg.search_max.max(1))
                    .intercept_params(1)
                    .intercept_results(1)
                    .body(move |ctx, args| {
                        let word = args[0].as_str()?;
                        ctx.sleep(lookup_cost); // model the search
                        let meaning = store2
                            .get(word)
                            .cloned()
                            .unwrap_or_else(|| format!("<no entry for {word}>"));
                        Ok(vec![Value::from(meaning)])
                    }),
            )
            .manager(move |mgr| {
                // word currently being searched -> calls combined onto it
                let mut waiting: HashMap<String, Vec<AcceptedCall>> = HashMap::new();
                // slot -> word it is searching
                let mut in_flight: HashMap<usize, String> = HashMap::new();
                loop {
                    let sel =
                        mgr.select(vec![Guard::accept("Search"), Guard::await_done("Search")])?;
                    match sel {
                        Selected::Accepted { call, .. } => {
                            let word = call.params()[0].as_str()?.to_string();
                            if combining {
                                if let Some(q) = waiting.get_mut(&word) {
                                    // "record that Word is now being
                                    // searched on behalf of Search[i]"
                                    q.push(call);
                                    continue;
                                }
                                waiting.insert(word.clone(), Vec::new());
                            }
                            in_flight.insert(call.slot(), word);
                            mgr.start_as_is(call)?;
                        }
                        Selected::Ready { done, .. } => {
                            let word = in_flight
                                .remove(&done.slot())
                                .expect("every start was recorded");
                            let meaning = done.results()[0].clone();
                            mgr.finish_as_is(done)?;
                            if combining {
                                for acc in waiting.remove(&word).unwrap_or_default() {
                                    mgr.finish_accepted(acc, vec![meaning.clone()])?;
                                }
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            })
            .spawn(rt)?;
        let search = obj.entry_id("Search")?;
        Ok(Dictionary { obj, search })
    }

    /// Look up a word (ALPS `Dictionary.Search(word, meaning)`).
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn search(&self, word: &str) -> Result<String> {
        let r = self.obj.call_id(self.search, argv![word])?;
        Ok(r[0].as_str()?.to_string())
    }

    /// The underlying object handle (stats expose starts vs combines).
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

/// Convenience store for tests and benches: `word-i -> meaning-i`.
pub fn synthetic_store(words: usize) -> HashMap<String, String> {
    (0..words)
        .map(|i| (format!("word-{i}"), format!("meaning-{i}")))
        .collect()
}

/// Shared counter type used by benches to track redundant executions.
pub type ExecCounter = Arc<Mutex<u64>>;

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    fn run_queries(combining: bool, queries: &[&str]) -> (Vec<String>, u64, u64) {
        let queries: Vec<String> = queries.iter().map(|s| s.to_string()).collect();
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let dict = Dictionary::spawn(
                rt,
                DictConfig {
                    search_max: 8,
                    lookup_cost: 200,
                    combining,
                },
                synthetic_store(10),
            )
            .unwrap();
            let mut hs = Vec::new();
            for (i, w) in queries.iter().enumerate() {
                let (d2, w2) = (dict.clone(), w.clone());
                hs.push(
                    rt.spawn_with(Spawn::new(format!("q{i}")), move || d2.search(&w2).unwrap()),
                );
            }
            let answers: Vec<String> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            (
                answers,
                dict.object().stats().starts(),
                dict.object().stats().combines(),
            )
        })
        .unwrap()
    }

    #[test]
    fn all_duplicates_execute_once_with_combining() {
        let (answers, starts, combines) =
            run_queries(true, &["word-1", "word-1", "word-1", "word-1"]);
        assert!(answers.iter().all(|a| a == "meaning-1"));
        assert_eq!(starts, 1);
        assert_eq!(combines, 3);
    }

    #[test]
    fn distinct_words_all_execute() {
        let (answers, starts, combines) = run_queries(true, &["word-1", "word-2", "word-3"]);
        assert_eq!(answers, vec!["meaning-1", "meaning-2", "meaning-3"]);
        assert_eq!(starts, 3);
        assert_eq!(combines, 0);
    }

    #[test]
    fn without_combining_every_query_executes() {
        let (answers, starts, combines) = run_queries(false, &["word-1", "word-1", "word-1"]);
        assert!(answers.iter().all(|a| a == "meaning-1"));
        assert_eq!(starts, 3);
        assert_eq!(combines, 0);
    }

    #[test]
    fn missing_words_get_placeholder() {
        let (answers, _, _) = run_queries(true, &["nope"]);
        assert_eq!(answers[0], "<no entry for nope>");
    }

    #[test]
    fn combining_preserves_latency_equivalence() {
        // All combined callers get the answer when the single execution
        // completes — total virtual time ~ one lookup, not four.
        let sim = SimRuntime::new();
        let elapsed = sim
            .run(|rt| {
                let dict = Dictionary::spawn(
                    rt,
                    DictConfig {
                        search_max: 4,
                        lookup_cost: 300,
                        combining: true,
                    },
                    synthetic_store(4),
                )
                .unwrap();
                let t0 = rt.now();
                let mut hs = Vec::new();
                for i in 0..4 {
                    let d2 = dict.clone();
                    hs.push(rt.spawn_with(Spawn::new(format!("q{i}")), move || {
                        d2.search("word-0").unwrap()
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                rt.now() - t0
            })
            .unwrap();
        assert!(elapsed < 2 * 300, "combining did not overlap: {elapsed}");
    }
}
