//! The dictionary database of paper §2.7.1 — request combining.
//!
//! "Since it is wasteful to execute multiple Search processes that search
//! for the meaning of the same word, the object's manager can be
//! programmed to recognize such requests and to combine them" — a
//! software adaptation of NYU Ultracomputer memory combining (§2.7).
//! Experiment E3 sweeps the duplicate rate and compares combining on/off.

use std::collections::HashMap;
use std::sync::Arc;

use alps_core::{
    argv, hash_values, spread, AcceptedCall, EntryDef, EntryId, Guard, ObjectBuilder, ObjectHandle,
    Result, Selected, ShardEntryId, ShardedBuilder, ShardedHandle, Ty, Value,
};
use alps_runtime::Runtime;
use parking_lot::Mutex;

/// Configuration for the dictionary object.
#[derive(Debug, Clone)]
pub struct DictConfig {
    /// Elements of the hidden `Search` procedure array (`SearchMax`).
    pub search_max: usize,
    /// Simulated ticks one dictionary lookup costs.
    pub lookup_cost: u64,
    /// Whether the manager combines duplicate in-flight words.
    pub combining: bool,
}

impl Default for DictConfig {
    fn default() -> Self {
        DictConfig {
            search_max: 8,
            lookup_cost: 500,
            combining: true,
        }
    }
}

/// The dictionary object: one entry `Search(word) returns (meaning)`,
/// implemented as a hidden procedure array, with full parameter and
/// result interception (`intercepts Search(String; String)`).
#[derive(Debug, Clone)]
pub struct Dictionary {
    obj: ObjectHandle,
    search: EntryId,
}

impl Dictionary {
    /// Build the dictionary with the supplied word→meaning store.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(
        rt: &Runtime,
        cfg: DictConfig,
        entries: HashMap<String, String>,
    ) -> Result<Dictionary> {
        let obj = dict_builder("Dictionary", &cfg, Arc::new(entries)).spawn(rt)?;
        let search = obj.entry_id("Search")?;
        Ok(Dictionary { obj, search })
    }

    /// Look up a word (ALPS `Dictionary.Search(word, meaning)`).
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn search(&self, word: &str) -> Result<String> {
        let r = self.obj.call_id(self.search, argv![word])?;
        Ok(r[0].as_str()?.to_string())
    }

    /// The underlying object handle (stats expose starts vs combines).
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
}

/// Build one dictionary object over `store`: the §2.7.1 combining
/// manager, shared verbatim by the single [`Dictionary`] and every
/// shard of a [`ShardedDictionary`].
fn dict_builder(
    name: impl Into<String>,
    cfg: &DictConfig,
    store: Arc<HashMap<String, String>>,
) -> ObjectBuilder {
    let lookup_cost = cfg.lookup_cost;
    let combining = cfg.combining;
    ObjectBuilder::new(name)
        .entry(
            EntryDef::new("Search")
                .params([Ty::Str])
                .results([Ty::Str])
                .array(cfg.search_max.max(1))
                .intercept_params(1)
                .intercept_results(1)
                .body(move |ctx, args| {
                    let word = args[0].as_str()?;
                    ctx.sleep(lookup_cost); // model the search
                    let meaning = store
                        .get(word)
                        .cloned()
                        .unwrap_or_else(|| format!("<no entry for {word}>"));
                    Ok(vec![Value::from(meaning)])
                }),
        )
        .manager(move |mgr| {
            // word currently being searched -> calls combined onto it
            let mut waiting: HashMap<String, Vec<AcceptedCall>> = HashMap::new();
            // slot -> word it is searching
            let mut in_flight: HashMap<usize, String> = HashMap::new();
            loop {
                let sel = mgr.select(vec![Guard::accept("Search"), Guard::await_done("Search")])?;
                match sel {
                    Selected::Accepted { call, .. } => {
                        let word = call.params()[0].as_str()?.to_string();
                        if combining {
                            if let Some(q) = waiting.get_mut(&word) {
                                // "record that Word is now being
                                // searched on behalf of Search[i]"
                                q.push(call);
                                continue;
                            }
                            waiting.insert(word.clone(), Vec::new());
                        }
                        in_flight.insert(call.slot(), word);
                        mgr.start_as_is(call)?;
                    }
                    Selected::Ready { done, .. } => {
                        let word = in_flight
                            .remove(&done.slot())
                            .expect("every start was recorded");
                        let meaning = done.results()[0].clone();
                        mgr.finish_as_is(done)?;
                        if combining {
                            for acc in waiting.remove(&word).unwrap_or_default() {
                                mgr.finish_accepted(acc, vec![meaning.clone()])?;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
        })
}

/// Configuration for [`ShardedDictionary`]: the per-shard dictionary
/// config plus the shard count.
#[derive(Debug, Clone)]
pub struct ShardedDictConfig {
    /// Number of dictionary shards (replica objects).
    pub shards: usize,
    /// Per-shard dictionary settings (array size, lookup cost,
    /// per-manager combining).
    pub dict: DictConfig,
}

impl Default for ShardedDictConfig {
    fn default() -> Self {
        ShardedDictConfig {
            shards: 4,
            dict: DictConfig::default(),
        }
    }
}

/// The dictionary of §2.7.1 scaled past one manager: the word→meaning
/// store is partitioned over `S` shard objects with the *same* routing
/// hash the group uses for calls, so every `Search(word)` lands on the
/// shard holding `word`. Each shard keeps the paper's combining
/// manager; [`search_combined`](Self::search_combined) additionally
/// dedupes duplicate in-flight words on the *caller* side, before they
/// reach any shard's intake (cross-shard request combining, extending
/// §2.7).
#[derive(Debug, Clone)]
pub struct ShardedDictionary {
    group: ShardedHandle,
    search: ShardEntryId,
}

impl ShardedDictionary {
    /// Partition `entries` and spawn the shard objects.
    ///
    /// # Errors
    ///
    /// Propagates object-definition errors (none for valid configs).
    pub fn spawn(
        rt: &Runtime,
        cfg: ShardedDictConfig,
        entries: HashMap<String, String>,
    ) -> Result<ShardedDictionary> {
        let shards = cfg.shards.max(1);
        let mut parts: Vec<HashMap<String, String>> = vec![HashMap::new(); shards];
        for (word, meaning) in entries {
            let h = hash_values(&[Value::str(&word)]);
            parts[spread(h, shards)].insert(word, meaning);
        }
        let parts: Vec<Arc<HashMap<String, String>>> = parts.into_iter().map(Arc::new).collect();
        let group = ShardedBuilder::new("ShardedDictionary", shards).spawn(rt, |i| {
            dict_builder(format!("Dictionary#{i}"), &cfg.dict, Arc::clone(&parts[i]))
        })?;
        let search = group.entry_id("Search")?;
        Ok(ShardedDictionary { group, search })
    }

    /// Look up a word on the shard that owns it.
    ///
    /// # Errors
    ///
    /// [`alps_core::AlpsError::ObjectClosed`] after shutdown.
    pub fn search(&self, word: &str) -> Result<String> {
        let r = self.group.call_id(self.search, argv![word])?;
        Ok(r[0].as_str()?.to_string())
    }

    /// Look up a word with cross-shard combining: duplicate in-flight
    /// lookups of the same word share one execution group-wide.
    ///
    /// # Errors
    ///
    /// As [`search`](Self::search).
    pub fn search_combined(&self, word: &str) -> Result<String> {
        let r = self.group.call_id_combined(self.search, argv![word])?;
        Ok(r[0].as_str()?.to_string())
    }

    /// The underlying sharded group (aggregated stats, shard handles).
    pub fn group(&self) -> &ShardedHandle {
        &self.group
    }
}

/// Convenience store for tests and benches: `word-i -> meaning-i`.
pub fn synthetic_store(words: usize) -> HashMap<String, String> {
    (0..words)
        .map(|i| (format!("word-{i}"), format!("meaning-{i}")))
        .collect()
}

/// Shared counter type used by benches to track redundant executions.
pub type ExecCounter = Arc<Mutex<u64>>;

#[cfg(test)]
mod tests {
    use super::*;
    use alps_runtime::{SimRuntime, Spawn};

    fn run_queries(combining: bool, queries: &[&str]) -> (Vec<String>, u64, u64) {
        let queries: Vec<String> = queries.iter().map(|s| s.to_string()).collect();
        let sim = SimRuntime::new();
        sim.run(move |rt| {
            let dict = Dictionary::spawn(
                rt,
                DictConfig {
                    search_max: 8,
                    lookup_cost: 200,
                    combining,
                },
                synthetic_store(10),
            )
            .unwrap();
            let mut hs = Vec::new();
            for (i, w) in queries.iter().enumerate() {
                let (d2, w2) = (dict.clone(), w.clone());
                hs.push(
                    rt.spawn_with(Spawn::new(format!("q{i}")), move || d2.search(&w2).unwrap()),
                );
            }
            let answers: Vec<String> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            (
                answers,
                dict.object().stats().starts(),
                dict.object().stats().combines(),
            )
        })
        .unwrap()
    }

    #[test]
    fn all_duplicates_execute_once_with_combining() {
        let (answers, starts, combines) =
            run_queries(true, &["word-1", "word-1", "word-1", "word-1"]);
        assert!(answers.iter().all(|a| a == "meaning-1"));
        assert_eq!(starts, 1);
        assert_eq!(combines, 3);
    }

    #[test]
    fn distinct_words_all_execute() {
        let (answers, starts, combines) = run_queries(true, &["word-1", "word-2", "word-3"]);
        assert_eq!(answers, vec!["meaning-1", "meaning-2", "meaning-3"]);
        assert_eq!(starts, 3);
        assert_eq!(combines, 0);
    }

    #[test]
    fn without_combining_every_query_executes() {
        let (answers, starts, combines) = run_queries(false, &["word-1", "word-1", "word-1"]);
        assert!(answers.iter().all(|a| a == "meaning-1"));
        assert_eq!(starts, 3);
        assert_eq!(combines, 0);
    }

    #[test]
    fn missing_words_get_placeholder() {
        let (answers, _, _) = run_queries(true, &["nope"]);
        assert_eq!(answers[0], "<no entry for nope>");
    }

    #[test]
    fn sharded_partitioning_matches_routing() {
        // Every word must be findable: the store partition and the call
        // routing use the same hash, so no lookup can land on a shard
        // that does not own its word.
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let dict = ShardedDictionary::spawn(
                rt,
                ShardedDictConfig {
                    shards: 4,
                    dict: DictConfig {
                        lookup_cost: 10,
                        ..DictConfig::default()
                    },
                },
                synthetic_store(64),
            )
            .unwrap();
            for i in 0..64 {
                assert_eq!(
                    dict.search(&format!("word-{i}")).unwrap(),
                    format!("meaning-{i}")
                );
            }
            let s = dict.group().stats();
            assert_eq!(s.shards, 4);
            assert_eq!(s.calls, 64);
            // The load actually spread: no shard served everything.
            for i in 0..4 {
                assert!(
                    dict.group().shard_stats(i).calls() < 64,
                    "shard {i} served every call"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn sharded_combined_search_executes_once_per_burst() {
        // Deterministic under the sim scheduler: the leader's body
        // sleeps in virtual time, so all seven duplicates arrive and
        // join the combining cell before it completes. Per-manager
        // combining is OFF — the dedup observed is purely the group's
        // cross-shard combining.
        let sim = SimRuntime::new();
        sim.run(|rt| {
            let dict = ShardedDictionary::spawn(
                rt,
                ShardedDictConfig {
                    shards: 4,
                    dict: DictConfig {
                        search_max: 8,
                        lookup_cost: 200,
                        combining: false,
                    },
                },
                synthetic_store(8),
            )
            .unwrap();
            let hs: Vec<_> = (0..8)
                .map(|i| {
                    let d = dict.clone();
                    rt.spawn_with(Spawn::new(format!("q{i}")), move || {
                        d.search_combined("word-3").unwrap()
                    })
                })
                .collect();
            for h in hs {
                assert_eq!(h.join().unwrap(), "meaning-3");
            }
            let s = dict.group().stats();
            assert_eq!(s.starts, 1, "one execution for eight duplicate lookups");
            assert_eq!(s.combined_leads, 1);
            assert_eq!(s.combined_follows, 7);
        })
        .unwrap();
    }

    #[test]
    fn combining_preserves_latency_equivalence() {
        // All combined callers get the answer when the single execution
        // completes — total virtual time ~ one lookup, not four.
        let sim = SimRuntime::new();
        let elapsed = sim
            .run(|rt| {
                let dict = Dictionary::spawn(
                    rt,
                    DictConfig {
                        search_max: 4,
                        lookup_cost: 300,
                        combining: true,
                    },
                    synthetic_store(4),
                )
                .unwrap();
                let t0 = rt.now();
                let mut hs = Vec::new();
                for i in 0..4 {
                    let d2 = dict.clone();
                    hs.push(rt.spawn_with(Spawn::new(format!("q{i}")), move || {
                        d2.search("word-0").unwrap()
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                rt.now() - t0
            })
            .unwrap();
        assert!(elapsed < 2 * 300, "combining did not overlap: {elapsed}");
    }
}
