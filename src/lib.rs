//! Facade crate re-exporting the ALPS reproduction workspace.

pub use alps_core as core;
pub use alps_lang as lang;
pub use alps_net as net;
pub use alps_paper as paper;
pub use alps_runtime as runtime;
pub use alps_sync as sync;
