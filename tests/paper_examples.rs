//! Cross-crate integration: every paper example runs on both executors
//! through the public API.

use std::sync::Arc;

use alps::core::vals;
use alps::paper::bounded_buffer::AlpsBuffer;
use alps::paper::dictionary::{synthetic_store, DictConfig, Dictionary};
use alps::paper::nested::spawn_cross_calling_pair;
use alps::paper::parallel_buffer::{ParBufConfig, ParallelBuffer};
use alps::paper::readers_writers::{check_rw_invariants, AlpsRw, RwConfig, RwDatabase, RwEvent};
use alps::paper::spooler::{Spooler, SpoolerConfig};
use alps::runtime::metrics::EventLog;
use alps::runtime::{Runtime, SimRuntime, Spawn};

#[test]
fn bounded_buffer_both_executors() {
    // Simulated.
    let sim = SimRuntime::new();
    let got = sim
        .run(|rt| {
            let buf = AlpsBuffer::spawn(rt, 3).unwrap();
            let (b2, rt2) = (buf.clone(), rt.clone());
            let p = rt.spawn_with(Spawn::new("p"), move || {
                for i in 0..30 {
                    b2.deposit(&rt2, i).unwrap();
                }
            });
            let out: Vec<i64> = (0..30).map(|_| buf.remove(rt).unwrap()).collect();
            p.join().unwrap();
            out
        })
        .unwrap();
    assert_eq!(got, (0..30).collect::<Vec<_>>());
    // Threaded.
    let rt = Runtime::threaded();
    let buf = AlpsBuffer::spawn(&rt, 3).unwrap();
    let (b2, rt2) = (buf.clone(), rt.clone());
    let p = rt.spawn_with(Spawn::new("p"), move || {
        for i in 0..30 {
            b2.deposit(&rt2, i).unwrap();
        }
    });
    let got: Vec<i64> = (0..30).map(|_| buf.remove(&rt).unwrap()).collect();
    p.join().unwrap();
    assert_eq!(got, (0..30).collect::<Vec<_>>());
    buf.object().shutdown();
    rt.shutdown();
}

#[test]
fn readers_writers_invariants_on_threads() {
    let rt = Runtime::threaded();
    let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
    let cfg = RwConfig {
        read_max: 3,
        read_cost: 0,
        write_cost: 0,
    };
    let db = Arc::new(AlpsRw::spawn(&rt, cfg, Some(Arc::clone(&log))).unwrap());
    let mut hs = Vec::new();
    for i in 0..6 {
        let (db2, rt2) = (Arc::clone(&db), rt.clone());
        hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
            for _ in 0..20 {
                db2.read(&rt2);
            }
        }));
    }
    for i in 0..2 {
        let (db2, rt2) = (Arc::clone(&db), rt.clone());
        hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
            for _ in 0..10 {
                db2.write(&rt2);
            }
        }));
    }
    for h in hs {
        h.join().unwrap();
    }
    let events = log.snapshot();
    assert_eq!(events.len(), (6 * 20 + 2 * 10) * 2);
    check_rw_invariants(&events, 3);
    db.object().shutdown();
    rt.shutdown();
}

#[test]
fn dictionary_combining_saves_executions_threaded() {
    let rt = Runtime::threaded();
    let dict = Dictionary::spawn(
        &rt,
        DictConfig {
            search_max: 8,
            lookup_cost: 3_000, // 3ms real sleep so duplicates overlap
            combining: true,
        },
        synthetic_store(4),
    )
    .unwrap();
    let mut hs = Vec::new();
    for _ in 0..8 {
        let d2 = dict.clone();
        hs.push(rt.spawn(move || d2.search("word-1").unwrap()));
    }
    for h in hs {
        assert_eq!(h.join().unwrap(), "meaning-1");
    }
    let stats = dict.object().stats();
    assert!(
        stats.starts() < 8,
        "expected combining to elide work: starts={}",
        stats.starts()
    );
    assert_eq!(stats.starts() + stats.combines(), 8);
    dict.object().shutdown();
    rt.shutdown();
}

#[test]
fn spooler_and_parallel_buffer_smoke_threaded() {
    let rt = Runtime::threaded();
    let sp = Spooler::spawn(
        &rt,
        SpoolerConfig {
            printers: 2,
            print_max: 4,
            ticks_per_byte: 0,
        },
    )
    .unwrap();
    let mut hs = Vec::new();
    for i in 0..8 {
        let (sp2, rt2) = (sp.clone(), rt.clone());
        hs.push(rt.spawn(move || sp2.print(&rt2, "f", 10 + i).unwrap()));
    }
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(sp.printer_stats().jobs.iter().sum::<u64>(), 8);
    sp.object().shutdown();

    let buf = ParallelBuffer::spawn(
        &rt,
        ParBufConfig {
            slots: 4,
            producer_max: 2,
            consumer_max: 2,
            copy_cost: 0,
        },
    )
    .unwrap();
    let b2 = buf.clone();
    let p = rt.spawn(move || {
        for i in 0..40 {
            b2.deposit(i).unwrap();
        }
    });
    let mut got: Vec<i64> = (0..40).map(|_| buf.remove().unwrap()).collect();
    p.join().unwrap();
    got.sort_unstable();
    assert_eq!(got, (0..40).collect::<Vec<_>>());
    buf.object().shutdown();
    rt.shutdown();
}

#[test]
fn nested_calls_complete_threaded() {
    let rt = Runtime::threaded();
    let (x, _y) = spawn_cross_calling_pair(&rt).unwrap();
    let mut hs = Vec::new();
    for i in 0..6i64 {
        let x2 = x.clone();
        hs.push(rt.spawn(move || x2.call("P", vals![i]).unwrap()[0].as_int().unwrap()));
    }
    for (i, h) in hs.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), (i as i64 + 101) * 2);
    }
    x.shutdown();
    rt.shutdown();
}

#[test]
fn facade_reexports_compose() {
    // The `alps` facade exposes all layers together.
    let sim = alps::runtime::SimRuntime::new();
    let v = sim
        .run(|rt| {
            let sem = alps::sync::Semaphore::new(1);
            sem.acquire(rt);
            sem.release(rt);
            let buf = alps::paper::bounded_buffer::AlpsBuffer::spawn(rt, 2).unwrap();
            buf.deposit(rt, 9).unwrap();
            buf.remove(rt).unwrap()
        })
        .unwrap();
    assert_eq!(v, 9);
}
