//! Failure injection: panicking bodies, protocol-violating managers,
//! shutdown races — the object must stay consistent or fail loudly, never
//! hang or corrupt.

use std::sync::Arc;

use alps::core::{vals, AlpsError, EntryDef, Guard, ObjectBuilder, Selected, Ty, Value};
use alps::runtime::{Runtime, SimRuntime, Spawn};

#[test]
fn panicking_bodies_do_not_poison_the_object() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("Flaky")
            .entry(
                EntryDef::new("Work")
                    .params([Ty::Int])
                    .results([Ty::Int])
                    .array(2)
                    .intercepted()
                    .body(|_ctx, args| {
                        let v = args[0].as_int()?;
                        assert!(v % 3 != 0, "injected failure on multiples of 3");
                        Ok(vec![Value::Int(v)])
                    }),
            )
            .manager(|mgr| loop {
                let sel = mgr.select(vec![Guard::accept("Work"), Guard::await_done("Work")])?;
                match sel {
                    Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                    Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                    _ => unreachable!(),
                }
            })
            .spawn(rt)
            .unwrap();
        let mut failures = 0;
        let mut successes = 0;
        for i in 1..=12i64 {
            match obj.call("Work", vals![i]) {
                Ok(r) => {
                    assert_eq!(r[0].as_int().unwrap(), i);
                    successes += 1;
                }
                Err(AlpsError::BodyFailed { .. }) => failures += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(failures, 4); // 3, 6, 9, 12
        assert_eq!(successes, 8);
        assert_eq!(obj.stats().body_failures(), 4);
        assert!(!obj.is_closed(), "object survived the failures");
    })
    .unwrap();
}

#[test]
fn manager_crash_fails_callers_with_object_closed() {
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let obj = ObjectBuilder::new("BadMgr")
            .entry(EntryDef::new("P").intercepted().body(|_ctx, _| Ok(vec![])))
            .manager(|mgr| {
                let _first = mgr.accept("P")?;
                // Manager "crashes" with an application error after
                // accepting (and leaks the token — a protocol violation).
                Err(AlpsError::Custom("manager bug".into()))
            })
            .spawn(rt)
            .unwrap();
        let err = obj.call("P", vals![]).unwrap_err();
        // Either the protocol violation (token drop) or the shutdown
        // races first; both are loud and typed.
        assert!(
            matches!(
                err,
                AlpsError::ProtocolViolation { .. } | AlpsError::ObjectClosed { .. }
            ),
            "unexpected: {err}"
        );
        // Manager error recorded.
        let me = obj.manager_error().expect("manager error captured");
        assert_eq!(me.to_string(), "manager bug");
        // Later calls fail fast.
        let err = obj.call("P", vals![]).unwrap_err();
        assert!(matches!(err, AlpsError::ObjectClosed { .. }));
    })
    .unwrap();
}

#[test]
fn shutdown_racing_concurrent_callers_threaded() {
    // Many threads call while another shuts the object down; every call
    // must either succeed or fail with ObjectClosed — never hang.
    let rt = Runtime::threaded();
    let obj = ObjectBuilder::new("Racy")
        .entry(
            EntryDef::new("Echo")
                .params([Ty::Int])
                .results([Ty::Int])
                .array(4)
                .intercepted()
                .body(|_ctx, args| Ok(vec![args[0].clone()])),
        )
        .manager(|mgr| loop {
            let sel = mgr.select(vec![Guard::accept("Echo"), Guard::await_done("Echo")])?;
            match sel {
                Selected::Accepted { call, .. } => mgr.start_as_is(call)?,
                Selected::Ready { done, .. } => mgr.finish_as_is(done)?,
                _ => unreachable!(),
            }
        })
        .spawn(&rt)
        .unwrap();
    let mut hs = Vec::new();
    for t in 0..8 {
        let obj2 = obj.clone();
        hs.push(rt.spawn_with(Spawn::new(format!("caller{t}")), move || {
            let mut ok = 0u32;
            let mut closed = 0u32;
            for i in 0..200i64 {
                match obj2.call("Echo", vals![i]) {
                    Ok(r) => {
                        assert_eq!(r[0].as_int().unwrap(), i);
                        ok += 1;
                    }
                    Err(AlpsError::ObjectClosed { .. }) => closed += 1,
                    Err(other) => panic!("unexpected: {other}"),
                }
            }
            (ok, closed)
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(5));
    obj.shutdown();
    let mut total_ok = 0;
    let mut total_closed = 0;
    for h in hs {
        let (ok, closed) = h.join().unwrap();
        total_ok += ok;
        total_closed += closed;
    }
    assert_eq!(total_ok + total_closed, 8 * 200);
    rt.shutdown();
}

#[test]
fn interpreter_surfaces_body_failures() {
    use alps::lang::{check, parse, run_checked, Output};
    let src = r#"
        object F defines
          proc Boom() returns (int);
        end F;
        object F implements
          proc Boom() returns (int);
          var xs: list(int);
          begin
            return (get(xs, 99))   { out of bounds: injected failure }
          end Boom;
          manager
            intercepts Boom;
            begin
              loop
                accept Boom => execute Boom
              end loop
            end;
        end F;
        main var v: int; begin
          v := F.Boom()
        end
    "#;
    let checked = Arc::new(check(parse(src).unwrap()).unwrap());
    let (out, _) = Output::buffer();
    let sim = SimRuntime::new();
    let err = sim
        .run(move |rt| run_checked(rt, &checked, out).map_err(|e| e.to_string()))
        .unwrap()
        .unwrap_err();
    assert!(err.contains("out of bounds"), "{err}");
}
