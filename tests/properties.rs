//! Property-based tests: core invariants must hold across many random —
//! but reproducible — schedules (the simulator's seeded
//! `PriorityRandom` policy) and workload shapes.

use std::sync::Arc;

use alps::core::vals;
use alps::paper::bounded_buffer::AlpsBuffer;
use alps::paper::readers_writers::{check_rw_invariants, AlpsRw, RwConfig, RwDatabase, RwEvent};
use alps::runtime::metrics::EventLog;
use alps::runtime::{Chan, Runtime, SchedPolicy, SimRuntime, Spawn};
use alps::sync::{PathController, Semaphore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO + conservation for the managed buffer under random schedules
    /// and shapes.
    #[test]
    fn buffer_fifo_and_conservation(
        seed in any::<u64>(),
        cap in 1usize..6,
        items in 1i64..60,
    ) {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let got = sim
            .run(move |rt| {
                let buf = AlpsBuffer::spawn(rt, cap).unwrap();
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..items {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                let out: Vec<i64> = (0..items).map(|_| buf.remove(rt).unwrap()).collect();
                p.join().unwrap();
                out
            })
            .unwrap();
        prop_assert_eq!(got, (0..items).collect::<Vec<_>>());
    }

    /// Readers–writers safety invariants hold for every schedule, mix,
    /// and ReadMax.
    #[test]
    fn rw_safety_under_random_schedules(
        seed in any::<u64>(),
        read_max in 1usize..5,
        readers in 1usize..5,
        writers in 1usize..3,
    ) {
        let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
        let log2 = Arc::clone(&log);
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        sim.run(move |rt| {
            let cfg = RwConfig {
                read_max,
                read_cost: 10,
                write_cost: 15,
            };
            let db = Arc::new(AlpsRw::spawn(rt, cfg, Some(log2)).unwrap());
            let mut hs = Vec::new();
            for i in 0..readers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                    for _ in 0..5 {
                        db2.read(&rt2);
                    }
                }));
            }
            for i in 0..writers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    for _ in 0..5 {
                        db2.write(&rt2);
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
        })
        .unwrap();
        let events = log.snapshot();
        prop_assert_eq!(events.len(), (readers + writers) * 5 * 2);
        check_rw_invariants(&events, read_max);
    }

    /// The acceptance-condition receive removes exactly the first match
    /// and preserves the order of everything else.
    #[test]
    fn recv_match_preserves_other_messages(
        msgs in proptest::collection::vec(-100i64..100, 0..20),
        threshold in -100i64..100,
    ) {
        let rt = Runtime::threaded();
        let c: Chan<i64> = Chan::unbounded("t");
        for m in &msgs {
            c.send(&rt, *m).unwrap();
        }
        let got = c.recv_match(&rt, |m| *m >= threshold);
        let expect_idx = msgs.iter().position(|m| *m >= threshold);
        prop_assert_eq!(got, expect_idx.map(|i| msgs[i]));
        let mut rest: Vec<i64> = Vec::new();
        while let Some(v) = c.try_recv(&rt) {
            rest.push(v);
        }
        let mut want = msgs.clone();
        if let Some(i) = expect_idx {
            want.remove(i);
        }
        prop_assert_eq!(rest, want);
        rt.shutdown();
    }

    /// A compiled `n:(op)` path restriction never admits more than `n`
    /// concurrent activations, for any schedule.
    #[test]
    fn path_limit_holds_under_random_schedules(
        seed in any::<u64>(),
        bound in 1u64..5,
        workers in 1usize..8,
    ) {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let peak = sim
            .run(move |rt| {
                let pc = Arc::new(
                    PathController::compile(&format!("path {bound}:(work) end")).unwrap(),
                );
                let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..workers {
                    let (pc2, rt2) = (Arc::clone(&pc), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        pc2.enter(&rt2, "work").unwrap();
                        let n = a2.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                        p2.fetch_max(n, std::sync::atomic::Ordering::SeqCst);
                        rt2.sleep(5);
                        a2.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        pc2.exit(&rt2, "work").unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(std::sync::atomic::Ordering::SeqCst)
            })
            .unwrap();
        prop_assert!(peak as u64 <= bound, "peak {peak} exceeded bound {bound}");
    }

    /// Semaphore conservation: permits out never exceed permits granted.
    #[test]
    fn semaphore_counting_is_conserved(
        seed in any::<u64>(),
        permits in 1u64..4,
        workers in 1usize..6,
    ) {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let peak = sim
            .run(move |rt| {
                let s = Semaphore::new(permits);
                let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..workers {
                    let (s2, rt2) = (s.clone(), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..3 {
                            s2.acquire(&rt2);
                            let n = a2.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                            p2.fetch_max(n, std::sync::atomic::Ordering::SeqCst);
                            rt2.yield_now();
                            a2.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            s2.release(&rt2);
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(std::sync::atomic::Ordering::SeqCst)
            })
            .unwrap();
        prop_assert!(peak as u64 <= permits);
    }

    /// The ALPS lexer/parser never panic on arbitrary input — they
    /// return structured errors.
    #[test]
    fn parser_total_on_arbitrary_input(src in "\\PC*") {
        let _ = alps::lang::parse(&src);
    }

    /// Same-seed simulated runs of the buffer produce identical stats —
    /// the determinism guarantee the whole experiment suite rests on.
    #[test]
    fn determinism_same_seed_same_trace(seed in any::<u64>()) {
        fn trace(seed: u64) -> (u64, u64, u64) {
            let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
            sim.run(|rt| {
                let buf = AlpsBuffer::spawn(rt, 2).unwrap();
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..10 {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                for _ in 0..10 {
                    buf.remove(rt).unwrap();
                }
                p.join().unwrap();
                let s = buf.object().stats();
                (s.calls(), s.accepts(), s.call_latency().percentile(99.0))
            })
            .unwrap()
        }
        prop_assert_eq!(trace(seed), trace(seed));
    }
}

#[test]
fn call_with_wrong_types_never_reaches_bodies() {
    // Deterministic negative-path check outside proptest.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let buf = AlpsBuffer::spawn(rt, 2).unwrap();
        let err = buf.object().call("Deposit", vals!["nope"]).unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");
        assert_eq!(buf.object().stats().starts(), 0);
    })
    .unwrap();
}
