//! Property-based tests: core invariants must hold across many random —
//! but reproducible — schedules (the simulator's seeded
//! `PriorityRandom` policy) and workload shapes.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! small deterministic splitmix64 generator: every case is a pure function
//! of a fixed seed, making failures exactly reproducible.

use std::sync::Arc;

use alps::core::vals;
use alps::paper::bounded_buffer::AlpsBuffer;
use alps::paper::readers_writers::{check_rw_invariants, AlpsRw, RwConfig, RwDatabase, RwEvent};
use alps::runtime::metrics::EventLog;
use alps::runtime::{Chan, Runtime, SchedPolicy, SimRuntime, Spawn};
use alps::sync::{PathController, Semaphore};

const CASES: u64 = 24;

/// Deterministic splitmix64 — the reproducible randomness source for every
/// property below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// FIFO + conservation for the managed buffer under random schedules
/// and shapes.
#[test]
fn buffer_fifo_and_conservation() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1000 + case);
        let seed = rng.next_u64();
        let cap = rng.range(1, 6) as usize;
        let items = rng.range_i64(1, 60);
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let got = sim
            .run(move |rt| {
                let buf = AlpsBuffer::spawn(rt, cap).unwrap();
                let (b2, rt2) = (buf.clone(), rt.clone());
                let p = rt.spawn_with(Spawn::new("p"), move || {
                    for i in 0..items {
                        b2.deposit(&rt2, i).unwrap();
                    }
                });
                let out: Vec<i64> = (0..items).map(|_| buf.remove(rt).unwrap()).collect();
                p.join().unwrap();
                out
            })
            .unwrap();
        assert_eq!(
            got,
            (0..items).collect::<Vec<_>>(),
            "case {case}: seed={seed} cap={cap} items={items}"
        );
    }
}

/// Readers–writers safety invariants hold for every schedule, mix,
/// and ReadMax.
#[test]
fn rw_safety_under_random_schedules() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2000 + case);
        let seed = rng.next_u64();
        let read_max = rng.range(1, 5) as usize;
        let readers = rng.range(1, 5) as usize;
        let writers = rng.range(1, 3) as usize;
        let log: Arc<EventLog<RwEvent>> = Arc::new(EventLog::new());
        let log2 = Arc::clone(&log);
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        sim.run(move |rt| {
            let cfg = RwConfig {
                read_max,
                read_cost: 10,
                write_cost: 15,
            };
            let db = Arc::new(AlpsRw::spawn(rt, cfg, Some(log2)).unwrap());
            let mut hs = Vec::new();
            for i in 0..readers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("r{i}")), move || {
                    for _ in 0..5 {
                        db2.read(&rt2);
                    }
                }));
            }
            for i in 0..writers {
                let (db2, rt2) = (Arc::clone(&db), rt.clone());
                hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                    for _ in 0..5 {
                        db2.write(&rt2);
                    }
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
        })
        .unwrap();
        let events = log.snapshot();
        assert_eq!(
            events.len(),
            (readers + writers) * 5 * 2,
            "case {case}: seed={seed}"
        );
        check_rw_invariants(&events, read_max);
    }
}

/// The acceptance-condition receive removes exactly the first match
/// and preserves the order of everything else.
#[test]
fn recv_match_preserves_other_messages() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3000 + case);
        let len = rng.range(0, 20) as usize;
        let msgs: Vec<i64> = (0..len).map(|_| rng.range_i64(-100, 100)).collect();
        let threshold = rng.range_i64(-100, 100);
        let rt = Runtime::threaded();
        let c: Chan<i64> = Chan::unbounded("t");
        for m in &msgs {
            c.send(&rt, *m).unwrap();
        }
        let got = c.recv_match(&rt, |m| *m >= threshold);
        let expect_idx = msgs.iter().position(|m| *m >= threshold);
        assert_eq!(got, expect_idx.map(|i| msgs[i]), "case {case}");
        let mut rest: Vec<i64> = Vec::new();
        while let Some(v) = c.try_recv(&rt) {
            rest.push(v);
        }
        let mut want = msgs.clone();
        if let Some(i) = expect_idx {
            want.remove(i);
        }
        assert_eq!(rest, want, "case {case}");
        rt.shutdown();
    }
}

/// A compiled `n:(op)` path restriction never admits more than `n`
/// concurrent activations, for any schedule.
#[test]
fn path_limit_holds_under_random_schedules() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4000 + case);
        let seed = rng.next_u64();
        let bound = rng.range(1, 5);
        let workers = rng.range(1, 8) as usize;
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let peak = sim
            .run(move |rt| {
                let pc =
                    Arc::new(PathController::compile(&format!("path {bound}:(work) end")).unwrap());
                let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..workers {
                    let (pc2, rt2) = (Arc::clone(&pc), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        pc2.enter(&rt2, "work").unwrap();
                        let n = a2.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                        p2.fetch_max(n, std::sync::atomic::Ordering::SeqCst);
                        rt2.sleep(5);
                        a2.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        pc2.exit(&rt2, "work").unwrap();
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(std::sync::atomic::Ordering::SeqCst)
            })
            .unwrap();
        assert!(
            peak as u64 <= bound,
            "case {case}: peak {peak} exceeded bound {bound} (seed={seed})"
        );
    }
}

/// Semaphore conservation: permits out never exceed permits granted.
#[test]
fn semaphore_counting_is_conserved() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5000 + case);
        let seed = rng.next_u64();
        let permits = rng.range(1, 4);
        let workers = rng.range(1, 6) as usize;
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        let peak = sim
            .run(move |rt| {
                let s = Semaphore::new(permits);
                let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let mut hs = Vec::new();
                for i in 0..workers {
                    let (s2, rt2) = (s.clone(), rt.clone());
                    let (a2, p2) = (Arc::clone(&active), Arc::clone(&peak));
                    hs.push(rt.spawn_with(Spawn::new(format!("w{i}")), move || {
                        for _ in 0..3 {
                            s2.acquire(&rt2);
                            let n = a2.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                            p2.fetch_max(n, std::sync::atomic::Ordering::SeqCst);
                            rt2.yield_now();
                            a2.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            s2.release(&rt2);
                        }
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                peak.load(std::sync::atomic::Ordering::SeqCst)
            })
            .unwrap();
        assert!(peak as u64 <= permits, "case {case}: seed={seed}");
    }
}

/// The ALPS lexer/parser never panic on arbitrary input — they
/// return structured errors.
#[test]
fn parser_total_on_arbitrary_input() {
    // A mix of adversarial fixed inputs and seeded random byte soup
    // (printable and not) standing in for proptest's `\PC*` strategy.
    let fixed = [
        "",
        "object",
        "object X is end",
        "path 3:(a;b) end",
        "\u{0}\u{1}\u{2}",
        "((((((((((",
        "object \u{7f}\u{80}",
        "🦀🦀🦀 object entry",
        "-- comment only",
        "\"unterminated string",
    ];
    for src in fixed {
        let _ = alps::lang::parse(src);
    }
    for case in 0..CASES {
        let mut rng = Rng::new(0x6000 + case);
        let len = rng.range(0, 200) as usize;
        let src: String = (0..len)
            .map(|_| {
                // Bias toward ASCII/ALPS-ish tokens but include arbitrary
                // unicode scalars.
                match rng.range(0, 4) {
                    0 => char::from(rng.range(32, 127) as u8),
                    1 => ['\n', '\t', ';', ':', '(', ')'][rng.range(0, 6) as usize],
                    2 => {
                        let words = ["object", "entry", "path", "end", "is", "when"];
                        return words[rng.range(0, words.len() as u64) as usize].to_string();
                    }
                    _ => char::from_u32(rng.range(1, 0x0800) as u32).unwrap_or('x'),
                }
                .to_string()
            })
            .collect();
        let _ = alps::lang::parse(&src);
    }
}

/// Same-seed simulated runs of the buffer produce identical stats —
/// the determinism guarantee the whole experiment suite rests on.
#[test]
fn determinism_same_seed_same_trace() {
    fn trace(seed: u64) -> (u64, u64, u64) {
        let sim = SimRuntime::with_policy(SchedPolicy::PriorityRandom(seed));
        sim.run(|rt| {
            let buf = AlpsBuffer::spawn(rt, 2).unwrap();
            let (b2, rt2) = (buf.clone(), rt.clone());
            let p = rt.spawn_with(Spawn::new("p"), move || {
                for i in 0..10 {
                    b2.deposit(&rt2, i).unwrap();
                }
            });
            for _ in 0..10 {
                buf.remove(rt).unwrap();
            }
            p.join().unwrap();
            let s = buf.object().stats();
            (s.calls(), s.accepts(), s.call_latency().percentile(99.0))
        })
        .unwrap()
    }
    for case in 0..CASES {
        let seed = Rng::new(0x7000 + case).next_u64();
        assert_eq!(trace(seed), trace(seed), "case {case}: seed={seed}");
    }
}

#[test]
fn call_with_wrong_types_never_reaches_bodies() {
    // Deterministic negative-path check outside the randomized properties.
    let sim = SimRuntime::new();
    sim.run(|rt| {
        let buf = AlpsBuffer::spawn(rt, 2).unwrap();
        let err = buf.object().call("Deposit", vals!["nope"]).unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");
        assert_eq!(buf.object().stats().starts(), 0);
    })
    .unwrap();
}
