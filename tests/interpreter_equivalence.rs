//! The interpreter and the embedded API implement the same semantics:
//! running a paper program through ALPS source must match the
//! `alps-paper` implementation observation-for-observation.

use std::sync::Arc;

use alps::lang::{check, parse, run_checked, run_compiled, Output};
use alps::paper::dictionary::{synthetic_store, DictConfig, Dictionary};
use alps::runtime::{SimRuntime, Spawn};

fn run_alps(src: &str) -> Vec<String> {
    let checked = Arc::new(check(parse(src).expect("parse")).expect("check"));
    let (out, buf) = Output::buffer();
    let sim = SimRuntime::new();
    sim.run(move |rt| run_checked(rt, &checked, out).expect("run"))
        .expect("sim");
    let text = buf.lock().clone();
    text.lines().map(str::to_string).collect()
}

fn run_alps_compiled(src: &str) -> Vec<String> {
    let checked = Arc::new(check(parse(src).expect("parse")).expect("check"));
    let (out, buf) = Output::buffer();
    let sim = SimRuntime::new();
    sim.run(move |rt| run_compiled(rt, &checked, out).expect("run"))
        .expect("sim");
    let text = buf.lock().clone();
    text.lines().map(str::to_string).collect()
}

/// Every shipped example program must behave identically interpreted and
/// compiled: same observations, in the same order, on the deterministic
/// simulator.
#[test]
fn compiled_matches_interpreted_on_every_example() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/alps");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/alps")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "alps"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 7, "expected the 7 example programs");
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("read example");
        let interpreted = run_alps(&src);
        let compiled = run_alps_compiled(&src);
        assert_eq!(
            compiled, interpreted,
            "{name}: compiled output diverges from interpreted"
        );
        assert!(
            !interpreted.is_empty(),
            "{name}: example produced no observations — test is vacuous"
        );
    }
}

#[test]
fn embedded_dictionary_matches_source_dictionary_counts() {
    // Embedded: 3 hot queries -> 1 execution.
    let sim = SimRuntime::new();
    let embedded_starts = sim
        .run(|rt| {
            let dict = Dictionary::spawn(
                rt,
                DictConfig {
                    search_max: 4,
                    lookup_cost: 100,
                    combining: true,
                },
                synthetic_store(2),
            )
            .unwrap();
            let mut hs = Vec::new();
            for i in 0..3 {
                let d2 = dict.clone();
                hs.push(rt.spawn_with(Spawn::new(format!("q{i}")), move || {
                    d2.search("word-0").unwrap()
                }));
            }
            for h in hs {
                assert_eq!(h.join().unwrap(), "meaning-0");
            }
            dict.object().stats().starts()
        })
        .unwrap();
    assert_eq!(embedded_starts, 1);

    // Source: the same shape prints executions=1 (see the lang test
    // `combining_in_alps_source_executes_once` for the full program; here
    // we assert the counts agree).
    let out = run_alps(
        r#"
        object D defines
          proc Search(w: string) returns (string);
          proc Execs() returns (int);
        end D;
        object D implements
          var Executions: int;
          proc Search[1..4](w: string) returns (string);
          begin
            sleep(100);
            Executions := Executions + 1;
            return (w)
          end Search;
          proc Execs() returns (int);
          begin return (Executions) end Execs;
          manager
            intercepts Search(string; string);
            var FlightWords: list(string);
            var FlightSlots: list(int);
            var WaitSlots: list(int);
            var WaitWords: list(string);
            var k: int;
            var w: string;
            var busy: bool;
            begin
              loop
                (i: 1..4) accept Search[i](Word) =>
                  busy := false;
                  for k := 0 to len(FlightWords) - 1 do
                    if get(FlightWords, k) = Word then busy := true end if
                  end for;
                  if busy then
                    push(WaitSlots, i); push(WaitWords, Word)
                  else
                    push(FlightSlots, i); push(FlightWords, Word);
                    start Search[i](Word)
                  end if
              or
                (i: 1..4) await Search[i](Meaning) =>
                  w := "";
                  k := 0;
                  while k < len(FlightSlots) do
                    if get(FlightSlots, k) = i then
                      w := get(FlightWords, k);
                      remove(FlightSlots, k); remove(FlightWords, k)
                    else
                      k := k + 1
                    end if
                  end while;
                  finish Search[i](Meaning);
                  k := 0;
                  while k < len(WaitSlots) do
                    if get(WaitWords, k) = w then
                      finish Search[get(WaitSlots, k)](Meaning);
                      remove(WaitSlots, k); remove(WaitWords, k)
                    else
                      k := k + 1
                    end if
                  end while
              end loop
            end;
        end D;
        object C defines
          proc Ask(w: string);
        end C;
        object C implements
          proc Ask[1..4](w: string);
          var m: string;
          begin m := D.Search(w) end Ask;
        end C;
        main var n: int; begin
          par C.Ask("hot"), C.Ask("hot"), C.Ask("hot") end par;
          n := D.Execs();
          print(n)
        end
        "#,
    );
    assert_eq!(out, vec!["1"], "source combining must match embedded");
}

#[test]
fn source_deadlock_is_detected_not_hung() {
    // A producer filling a 2-slot buffer with nobody consuming: `par`
    // waits for the producer, the producer waits for space — classic
    // deadlock. The simulator must detect it.
    let src = r#"
        object Buffer defines
          proc Deposit(M: int);
        end Buffer;
        object Buffer implements
          var Store: list(int);
          proc Deposit(M: int);
          begin push(Store, M) end Deposit;
          manager
            intercepts Deposit(int);
            var Count: int;
            begin
              loop
                accept Deposit(M) when Count < 2 =>
                  execute Deposit(M); Count := Count + 1
              end loop
            end;
        end Buffer;
        object D defines
          proc Produce();
        end D;
        object D implements
          proc Produce();
          var i: int;
          begin
            for i := 1 to 10 do Buffer.Deposit(i) end for
          end Produce;
        end D;
        main begin
          par D.Produce() end par
        end
    "#;
    let checked = Arc::new(check(parse(src).unwrap()).unwrap());
    let (out, _buf) = Output::buffer();
    let sim = SimRuntime::new();
    let err = sim
        .run(move |rt| run_checked(rt, &checked, out).map_err(|e| e.to_string()))
        .unwrap_err();
    assert!(
        matches!(err, alps::runtime::RuntimeError::Deadlock { .. }),
        "expected detected deadlock, got {err:?}"
    );
}
